"""Tests for the Table 2 / Figure 8 evaluation harness."""

import numpy as np
import pytest

from repro.core import get_scheme
from repro.errormodel.montecarlo import (
    PatternOutcome,
    evaluate_pattern,
    evaluate_scheme,
    sdc_risk_table,
    weighted_outcomes,
)
from repro.errormodel.patterns import TABLE1_PROBABILITIES, ErrorPattern

SAMPLES = 4000  # small but adequate for structural assertions


@pytest.fixture(scope="module")
def trio_outcomes():
    return evaluate_scheme(get_scheme("trio"), samples=SAMPLES, seed=1)


@pytest.fixture(scope="module")
def secded_outcomes():
    return evaluate_scheme(get_scheme("ni-secded"), samples=SAMPLES, seed=1)


class TestGuaranteedCells:
    """Table-2 cells that are exact guarantees ("C" or "D")."""

    def test_everyone_corrects_single_bits(self, trio_outcomes, secded_outcomes):
        assert trio_outcomes[ErrorPattern.BIT].dce == 1.0
        assert secded_outcomes[ErrorPattern.BIT].dce == 1.0

    def test_trio_corrects_bytes(self, trio_outcomes):
        assert trio_outcomes[ErrorPattern.BYTE].dce == 1.0

    def test_trio_corrects_pins(self, trio_outcomes):
        assert trio_outcomes[ErrorPattern.PIN].dce == 1.0

    def test_duet_zero_byte_sdc(self):
        outcome = evaluate_pattern(get_scheme("duet"), ErrorPattern.BYTE)
        assert outcome.sdc == 0.0

    def test_secded_byte_sdc_positive(self, secded_outcomes):
        assert secded_outcomes[ErrorPattern.BYTE].sdc > 0.2

    def test_dsd_detects_pins(self):
        outcome = evaluate_pattern(get_scheme("ssc-dsd+"), ErrorPattern.PIN)
        assert outcome.due == 1.0

    def test_dsd_detects_doubles_and_triples(self):
        scheme = get_scheme("ssc-dsd+")
        rng = np.random.default_rng(0)
        double = evaluate_pattern(scheme, ErrorPattern.DOUBLE_BIT)
        triple = evaluate_pattern(scheme, ErrorPattern.TRIPLE_BIT,
                                  samples=SAMPLES, rng=rng)
        assert double.sdc == 0.0
        assert triple.sdc == 0.0


class TestExhaustiveness:
    def test_exhaustive_flags(self, trio_outcomes):
        assert trio_outcomes[ErrorPattern.BIT].exhaustive
        assert trio_outcomes[ErrorPattern.PIN].exhaustive
        assert trio_outcomes[ErrorPattern.BYTE].exhaustive
        assert trio_outcomes[ErrorPattern.DOUBLE_BIT].exhaustive
        assert not trio_outcomes[ErrorPattern.BEAT].exhaustive
        assert not trio_outcomes[ErrorPattern.ENTRY].exhaustive

    def test_event_counts(self, trio_outcomes):
        assert trio_outcomes[ErrorPattern.BIT].events == 288
        assert trio_outcomes[ErrorPattern.PIN].events == 792
        assert trio_outcomes[ErrorPattern.BYTE].events == 8892
        assert trio_outcomes[ErrorPattern.BEAT].events == SAMPLES

    def test_fractions_sum_to_one(self, trio_outcomes):
        for outcome in trio_outcomes.values():
            assert abs(outcome.dce + outcome.due + outcome.sdc - 1.0) < 1e-12

    def test_confidence_zero_for_exhaustive(self, trio_outcomes):
        assert trio_outcomes[ErrorPattern.BIT].sdc_confidence_99 == 0.0
        assert trio_outcomes[ErrorPattern.BEAT].sdc_confidence_99 > 0.0


class TestCells:
    def test_cell_rendering(self):
        corrected = PatternOutcome(ErrorPattern.BIT, 10, 1.0, 0.0, 0.0, True)
        detected = PatternOutcome(ErrorPattern.BYTE, 10, 0.0, 1.0, 0.0, True)
        risky = PatternOutcome(ErrorPattern.BEAT, 10, 0.5, 0.4, 0.1, False)
        assert corrected.cell() == "C"
        assert detected.cell() == "D"
        assert "%" in risky.cell()

    def test_cell_mixed_correct_and_detect(self):
        """sdc == 0 but neither dce nor due is 1.0: not "0.0000%"."""
        mixed = PatternOutcome(ErrorPattern.PIN, 10, 0.7, 0.3, 0.0, True)
        assert mixed.cell() == "C/D"

    def test_cell_sdc_shows_percentage(self):
        tiny = PatternOutcome(ErrorPattern.ENTRY, 10, 0.9, 0.0999, 0.0001, False)
        assert tiny.cell() == "0.0100%"


class TestTiming:
    def test_elapsed_and_rate_populated(self):
        outcome = evaluate_pattern(get_scheme("ni-secded"), ErrorPattern.BIT)
        assert outcome.elapsed_s > 0.0
        assert outcome.events_per_second > 0.0
        assert outcome.events_per_second == outcome.events / outcome.elapsed_s

    def test_elapsed_excluded_from_equality(self):
        one = PatternOutcome(ErrorPattern.BIT, 10, 1.0, 0.0, 0.0, True, 0.5)
        two = PatternOutcome(ErrorPattern.BIT, 10, 1.0, 0.0, 0.0, True, 9.0)
        assert one == two


class TestWorkers:
    """The ProcessPoolExecutor fan-out is bit-identical to the serial path."""

    def test_evaluate_scheme_workers_bit_identical(self):
        scheme = get_scheme("duet")
        serial = evaluate_scheme(scheme, samples=600, seed=5)
        fanned = evaluate_scheme(scheme, samples=600, seed=5, workers=2)
        assert fanned == serial

    def test_sdc_risk_table_workers_bit_identical(self):
        schemes = [get_scheme("ni-secded"), get_scheme("trio")]
        serial = sdc_risk_table(schemes, samples=600, seed=6)
        fanned = sdc_risk_table(schemes, samples=600, seed=6, workers=2)
        assert fanned == serial

    def test_unregistered_scheme_survives_fanout(self):
        """A scheme object absent from the registry is pickled, not named."""
        from repro.codes.hsiao import hsiao_code
        from repro.core.binary import BinaryEntryScheme

        scheme = BinaryEntryScheme(
            hsiao_code(), interleaved=False,
            name="local-secded", label="Local SECDED",
        )
        serial = evaluate_scheme(scheme, samples=400, seed=7)
        fanned = evaluate_scheme(scheme, samples=400, seed=7, workers=2)
        assert fanned == serial


class TestWeightedOutcomes:
    def test_probabilities_sum_to_one(self, trio_outcomes):
        outcome = weighted_outcomes(get_scheme("trio"),
                                    per_pattern=trio_outcomes)
        assert abs(outcome.correct + outcome.detect + outcome.sdc - 1.0) < 1e-9

    def test_reuses_per_pattern(self, trio_outcomes):
        outcome = weighted_outcomes(get_scheme("trio"),
                                    per_pattern=trio_outcomes)
        assert outcome.per_pattern is trio_outcomes

    def test_paper_orderings(self, trio_outcomes, secded_outcomes):
        trio = weighted_outcomes(get_scheme("trio"), per_pattern=trio_outcomes)
        secded = weighted_outcomes(get_scheme("ni-secded"),
                                   per_pattern=secded_outcomes)
        # TrioECC corrects more, crashes less, corrupts far less.
        assert trio.correct > secded.correct
        assert trio.detect < secded.detect
        assert trio.sdc < secded.sdc / 100

    def test_secded_headline_numbers(self, secded_outcomes):
        outcome = weighted_outcomes(get_scheme("ni-secded"),
                                    per_pattern=secded_outcomes)
        # Paper: ~74% corrected, ~20% detected, ~5.4% SDC.
        assert 0.70 < outcome.correct < 0.78
        assert 0.14 < outcome.detect < 0.26
        assert 0.03 < outcome.sdc < 0.11

    def test_custom_probabilities(self, trio_outcomes):
        only_bits = {pattern: 0.0 for pattern in ErrorPattern}
        only_bits[ErrorPattern.BIT] = 1.0
        outcome = weighted_outcomes(get_scheme("trio"),
                                    probabilities=only_bits,
                                    per_pattern=trio_outcomes)
        assert outcome.correct == 1.0

    def test_uncorrectable_accessor(self, trio_outcomes):
        outcome = weighted_outcomes(get_scheme("trio"),
                                    per_pattern=trio_outcomes)
        assert outcome.uncorrectable() == outcome.detect


class TestTable2:
    def test_table_structure(self):
        schemes = [get_scheme("ni-secded"), get_scheme("trio")]
        table = sdc_risk_table(schemes, samples=1000, seed=2)
        assert set(table) == {"ni-secded", "trio"}
        for outcomes in table.values():
            assert set(outcomes) == set(ErrorPattern)

    def test_determinism(self):
        scheme = get_scheme("duet")
        first = evaluate_scheme(scheme, samples=1000, seed=3)
        second = evaluate_scheme(scheme, samples=1000, seed=3)
        for pattern in ErrorPattern:
            assert first[pattern].sdc == second[pattern].sdc


class TestExhaustiveTriples:
    def test_exhaustive_triples_agree_with_sampling(self):
        """The full 3.7M-pattern 3-bit space, decoded exhaustively, must
        agree with the sampled estimate within its confidence interval.
        (This is the suite's one deliberately heavy test: ~15s.)"""
        from repro.errormodel.sampling import count_triple_bit_errors

        scheme = get_scheme("ni-secded")
        exhaustive = evaluate_pattern(
            scheme, ErrorPattern.TRIPLE_BIT, exhaustive_triples=True
        )
        assert exhaustive.exhaustive
        assert exhaustive.events == count_triple_bit_errors()

        sampled = evaluate_pattern(
            scheme, ErrorPattern.TRIPLE_BIT, samples=30_000,
            rng=np.random.default_rng(0),
        )
        margin = 3 * sampled.sdc_confidence_99 + 1e-3
        assert abs(sampled.sdc - exhaustive.sdc) < margin
        assert abs(sampled.due - exhaustive.due) < 0.02

"""Tests for exhaustive enumerators and random samplers."""

import numpy as np
import pytest

from repro.errormodel.classify import classify_errors_batch
from repro.errormodel.patterns import ErrorPattern
from repro.errormodel.sampling import (
    count_triple_bit_errors,
    enumerate_bit_errors,
    enumerate_bit_errors_packed,
    enumerate_byte_errors,
    enumerate_byte_errors_packed,
    enumerate_double_bit_errors,
    enumerate_double_bit_errors_packed,
    enumerate_pin_errors,
    enumerate_pin_errors_packed,
    iter_triple_bit_errors,
    iter_triple_bit_errors_packed,
    pattern_space_size,
    sample_beat_errors,
    sample_beat_errors_packed,
    sample_entry_errors,
    sample_entry_errors_packed,
    sample_pattern,
    sample_triple_bit_errors,
    sample_triple_bit_errors_packed,
)
from repro.gf.gf2 import pack_rows


class TestEnumerations:
    def test_bit_space(self):
        errors = enumerate_bit_errors()
        assert errors.shape == (288, 288)
        assert np.all(errors.sum(axis=1) == 1)

    def test_pin_space(self):
        errors = enumerate_pin_errors()
        assert errors.shape[0] == 72 * 11  # 792
        labels = classify_errors_batch(errors)
        assert all(label is ErrorPattern.PIN for label in labels)

    def test_byte_space(self):
        errors = enumerate_byte_errors()
        assert errors.shape[0] == 36 * 247  # 8892
        labels = classify_errors_batch(errors[:500])
        assert all(label is ErrorPattern.BYTE for label in labels)

    def test_double_bit_space(self):
        errors = enumerate_double_bit_errors()
        assert errors.shape[0] == 39888
        assert np.all(errors.sum(axis=1) == 2)
        labels = classify_errors_batch(errors[::200])
        assert all(label is ErrorPattern.DOUBLE_BIT for label in labels)

    def test_double_bit_count_closed_form(self):
        total = 288 * 287 // 2
        same_pin = 72 * 6  # C(4,2) per pin
        same_byte = 36 * 28  # C(8,2) per byte
        assert enumerate_double_bit_errors().shape[0] == total - same_pin - same_byte

    def test_no_duplicate_patterns(self):
        errors = enumerate_pin_errors()
        unique = {tuple(np.nonzero(row)[0].tolist()) for row in errors}
        assert len(unique) == errors.shape[0]


class TestTripleBits:
    def test_count_closed_form(self):
        expected = 288 * 287 * 286 // 6 - 72 * 4 - 36 * 56
        assert count_triple_bit_errors() == expected

    def test_iterator_blocks_valid(self):
        chunk = next(iter_triple_bit_errors(chunk=2048))
        assert chunk.shape[0] <= 2048 and chunk.shape[1] == 288
        assert np.all(chunk.sum(axis=1) == 3)
        labels = classify_errors_batch(chunk[::100])
        assert all(label is ErrorPattern.TRIPLE_BIT for label in labels)

    def test_iterator_total_matches_closed_form(self):
        total = sum(block.shape[0] for block in iter_triple_bit_errors())
        assert total == count_triple_bit_errors()

    def test_iterator_triples_unique(self):
        seen = set()
        for block in iter_triple_bit_errors(chunk=100_000):
            for row in block[:50]:  # spot-check each block's head
                seen.add(tuple(np.nonzero(row)[0].tolist()))
        assert len(seen) == len({tuple(sorted(t)) for t in seen})

    def test_sampler(self):
        rng = np.random.default_rng(0)
        errors = sample_triple_bit_errors(500, rng)
        assert errors.shape == (500, 288)
        labels = classify_errors_batch(errors)
        assert all(label is ErrorPattern.TRIPLE_BIT for label in labels)


class TestRandomSamplers:
    def test_beat_errors_classify_correctly(self):
        rng = np.random.default_rng(1)
        errors = sample_beat_errors(300, rng)
        labels = classify_errors_batch(errors)
        assert all(label is ErrorPattern.BEAT for label in labels)

    def test_beat_errors_confined_to_one_beat(self):
        rng = np.random.default_rng(2)
        errors = sample_beat_errors(100, rng)
        for row in errors:
            beats = {int(i) // 72 for i in np.nonzero(row)[0]}
            assert len(beats) == 1

    def test_entry_errors_classify_correctly(self):
        rng = np.random.default_rng(3)
        errors = sample_entry_errors(300, rng)
        labels = classify_errors_batch(errors)
        assert all(label is ErrorPattern.ENTRY for label in labels)

    def test_entry_errors_have_binomial_weight(self):
        rng = np.random.default_rng(4)
        weights = sample_entry_errors(500, rng).sum(axis=1)
        assert 130 < weights.mean() < 158  # ~144 expected

    def test_determinism(self):
        first = sample_beat_errors(50, np.random.default_rng(7))
        second = sample_beat_errors(50, np.random.default_rng(7))
        assert np.array_equal(first, second)


class TestCaching:
    """Exhaustive enumerations are computed once and returned read-only."""

    def test_enumerations_cached(self):
        assert enumerate_bit_errors() is enumerate_bit_errors()
        assert enumerate_pin_errors() is enumerate_pin_errors()
        assert enumerate_byte_errors() is enumerate_byte_errors()
        assert enumerate_double_bit_errors() is enumerate_double_bit_errors()

    def test_cached_arrays_read_only(self):
        errors = enumerate_double_bit_errors()
        with pytest.raises(ValueError):
            errors[0, 0] = 1

    def test_packed_enumerations_cached(self):
        assert enumerate_bit_errors_packed() is enumerate_bit_errors_packed()
        assert enumerate_byte_errors_packed() is enumerate_byte_errors_packed()


class TestPackedVariants:
    """Packed emitters carry the exact bits of their unpacked counterparts."""

    def test_packed_enumerations_match(self):
        pairs = [
            (enumerate_bit_errors, enumerate_bit_errors_packed),
            (enumerate_pin_errors, enumerate_pin_errors_packed),
            (enumerate_byte_errors, enumerate_byte_errors_packed),
            (enumerate_double_bit_errors, enumerate_double_bit_errors_packed),
        ]
        for unpacked, packed in pairs:
            assert np.array_equal(packed(), pack_rows(unpacked()))

    def test_packed_triple_iterator_matches(self):
        unpacked = next(iter_triple_bit_errors(chunk=4096))
        packed = next(iter_triple_bit_errors_packed(chunk=4096))
        assert np.array_equal(packed, pack_rows(unpacked))

    @pytest.mark.parametrize("pair", [
        (sample_triple_bit_errors, sample_triple_bit_errors_packed),
        (sample_beat_errors, sample_beat_errors_packed),
        (sample_entry_errors, sample_entry_errors_packed),
    ])
    def test_packed_samplers_share_random_stream(self, pair):
        unpacked_fn, packed_fn = pair
        unpacked = unpacked_fn(200, np.random.default_rng(42))
        packed = packed_fn(200, np.random.default_rng(42))
        assert packed.dtype == np.uint64
        assert np.array_equal(packed, pack_rows(unpacked))


class TestDispatcher:
    @pytest.mark.parametrize("pattern", list(ErrorPattern))
    def test_sample_pattern_yields_requested_class(self, pattern):
        rng = np.random.default_rng(5)
        errors = sample_pattern(pattern, 64, rng)
        assert errors.shape == (64, 288)
        labels = classify_errors_batch(errors)
        assert all(label is pattern for label in labels)

    def test_space_sizes(self):
        assert pattern_space_size(ErrorPattern.BIT) == 288
        assert pattern_space_size(ErrorPattern.PIN) == 792
        assert pattern_space_size(ErrorPattern.BYTE) == 8892
        assert pattern_space_size(ErrorPattern.DOUBLE_BIT) == 39888
        assert pattern_space_size(ErrorPattern.BEAT) is None
        assert pattern_space_size(ErrorPattern.ENTRY) is None

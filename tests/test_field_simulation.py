"""End-to-end field simulation: controller counters vs analytic Figure 8.

Drives generator-truth SEU events through the full deployment data path —
encode, store in the simulated device, corrupt, decode via
:class:`ProtectedMemory` — and checks that the observed DCE/DUE/SDC
proportions agree with the analytic evaluation when both use the *same*
event-derived pattern probabilities.  This closes the loop between the
characterization half and the mitigation half of the reproduction.
"""

import numpy as np
import pytest

from repro.beam.events import SoftErrorEventGenerator
from repro.core import get_scheme
from repro.core.layout import ENTRY_BITS, NUM_PINS
from repro.dram.controller import ProtectedMemory, UncorrectableError
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.errormodel.montecarlo import weighted_outcomes

NUM_EVENTS = 500
MAX_ENTRIES_PER_EVENT = 5  # cap broad events to bound the test's work


def _transmitted_flips(positions) -> np.ndarray:
    """Map logical data-bit flips (word-major) to transmitted coordinates."""
    flips = np.zeros(ENTRY_BITS, dtype=np.uint8)
    for position in positions:
        beat, pin = divmod(int(position), 64)
        flips[beat * NUM_PINS + pin] = 1
    return flips


@pytest.mark.parametrize("scheme_name", ["ni-secded", "trio"])
def test_field_counters_match_analytic_outcomes(scheme_name):
    generator = SoftErrorEventGenerator(seed=77)
    events = [generator.generate_event(float(i)) for i in range(NUM_EVENTS)]

    # --- simulated path: one entry-decode per (event, affected entry).
    device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
    memory = ProtectedMemory(device, get_scheme(scheme_name))
    payload = bytes(range(32))

    dce = due = sdc = total = 0
    for event in events:
        for entry_index, positions in list(event.flips.items())[
            :MAX_ENTRIES_PER_EVENT
        ]:
            memory.write(entry_index, payload)
            device.inject_upset(entry_index, _transmitted_flips(positions))
            total += 1
            try:
                delivered = memory.read(entry_index)
            except UncorrectableError:
                due += 1
            else:
                if delivered == payload:
                    dce += 1
                else:
                    sdc += 1

    # --- analytic path under per-entry probabilities derived from the
    # exact set of corruptions the simulation injected.
    from collections import Counter

    from repro.errormodel.classify import classify_error
    from repro.errormodel.patterns import ErrorPattern

    counts: Counter = Counter()
    for event in events:
        for positions in list(event.flips.values())[:MAX_ENTRIES_PER_EVENT]:
            counts[classify_error(_transmitted_flips(positions))] += 1
    probabilities = {
        pattern: counts.get(pattern, 0) / total for pattern in ErrorPattern
    }
    outcome = weighted_outcomes(
        get_scheme(scheme_name), probabilities=probabilities,
        samples=20_000, seed=5,
    )

    # Same pattern mixture, independent sampling of the within-pattern
    # shapes: agreement should be tight.
    assert dce / total == pytest.approx(outcome.correct, abs=0.06)
    assert due / total == pytest.approx(outcome.detect, abs=0.06)
    if scheme_name == "trio":
        assert sdc / total < 0.005
    else:
        assert sdc / total == pytest.approx(outcome.sdc, abs=0.05)


def test_trio_vs_secded_in_the_field():
    """The headline, end to end: same event stream, far fewer interrupts
    and corruptions under TrioECC."""
    generator = SoftErrorEventGenerator(seed=99)
    events = [generator.generate_event(float(i)) for i in range(300)]
    payload = bytes(32)

    results = {}
    for name in ("ni-secded", "trio"):
        device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
        memory = ProtectedMemory(device, get_scheme(name))
        bad_data = 0
        for event in events:
            for entry_index, positions in list(event.flips.items())[:3]:
                memory.write(entry_index, payload)
                device.inject_upset(
                    entry_index, _transmitted_flips(positions)
                )
                try:
                    if memory.read(entry_index) != payload:
                        bad_data += 1
                except UncorrectableError:
                    pass
        results[name] = (memory.counters, bad_data)

    secded_counters, secded_sdc = results["ni-secded"]
    trio_counters, trio_sdc = results["trio"]
    assert trio_counters.uncorrectable_errors < secded_counters.uncorrectable_errors
    assert trio_counters.corrected_errors > secded_counters.corrected_errors
    assert trio_sdc <= secded_sdc

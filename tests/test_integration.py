"""End-to-end integration tests spanning the whole pipeline.

These mirror how the paper itself flows: beam campaign -> filtered error
patterns -> error-model probabilities -> ECC evaluation -> system-level
conclusions, plus the protected-memory round trip that a deployed GPU
performs on every access.
"""

import numpy as np
import pytest

from repro.beam.campaign import BeamCampaign, CampaignConfig
from repro.beam.displacement import DamageParameters
from repro.beam.events import EventParameters, SoftErrorEventGenerator
from repro.beam.postprocess import (
    derive_table1,
    events_from_truth,
    filter_intermittent,
    group_events,
)
from repro.core import DecodeStatus, get_scheme
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.errormodel.montecarlo import weighted_outcomes
from repro.system.automotive import assess_scheme
from repro.system.hpc import ExascaleSystem


class TestProtectedMemoryRoundTrip:
    """Store encoded entries in the simulated DRAM, corrupt them with real
    generator events, and decode — the deployment data path."""

    def test_trio_protects_device_contents(self):
        geometry = HBM2Geometry.for_gpu(32)
        device = SimulatedHBM2(geometry)
        scheme = get_scheme("trio")
        rng = np.random.default_rng(0)

        payloads = {}
        for entry_index in (7, 1_000_003, 2**29):
            data = rng.integers(0, 2, 256, dtype=np.uint8)
            payloads[entry_index] = data
            device.write_entry(entry_index, scheme.encode(data))

        # A mat-local byte error on one stored entry.
        flips = np.zeros(288, dtype=np.uint8)
        flips[80:88] = 1  # byte 10: beat 1, pins 8-15
        device.inject_upset(1_000_003, flips)

        for entry_index, data in payloads.items():
            result = scheme.decode(device.read_entry(entry_index))
            assert result.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED)
            assert np.array_equal(result.data, data)

    def test_secded_fails_where_trio_succeeds(self):
        device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
        trio = get_scheme("trio")
        secded = get_scheme("ni-secded")
        data = np.random.default_rng(1).integers(0, 2, 256, dtype=np.uint8)

        flips = np.zeros(288, dtype=np.uint8)
        flips[8:16] = 1  # a full byte error

        trio_result = trio.decode(trio.encode(data) ^ flips)
        secded_result = secded.decode(secded.encode(data) ^ flips)
        assert trio_result.status is DecodeStatus.CORRECTED
        assert np.array_equal(trio_result.data, data)
        assert secded_result.status is DecodeStatus.DETECTED or not np.array_equal(
            secded_result.data, data
        )


class TestCampaignToSystemPipeline:
    def test_full_paper_pipeline(self):
        # 1. Characterize: run a small beam campaign and derive patterns.
        config = CampaignConfig(
            runs=2, write_cycles=4, reads_per_write=3, loop_time_s=2.0,
            seed=123,
            event_parameters=EventParameters(mean_time_to_event_s=5.0),
            damage_parameters=DamageParameters(leaky_pool=40,
                                               saturation_fluence=2e8),
        )
        result = BeamCampaign(config).run()
        filtered = filter_intermittent(result.records)
        observed = group_events(filtered.soft_records)
        assert observed, "campaign produced no observable events"

        # Supplement with generator-truth events for stable statistics.
        generator = SoftErrorEventGenerator(seed=5)
        observed += events_from_truth(
            [generator.generate_event(float(i)) for i in range(1500)]
        )
        probabilities = derive_table1(observed)
        assert abs(sum(probabilities.values()) - 1.0) < 1e-9

        # 2. Mitigate: evaluate ECC under the *derived* probabilities.
        trio = weighted_outcomes(get_scheme("trio"), probabilities=probabilities,
                                 samples=3000, seed=9)
        secded = weighted_outcomes(get_scheme("ni-secded"),
                                   probabilities=probabilities,
                                   per_pattern=None, samples=3000, seed=9)
        assert trio.sdc < secded.sdc / 50
        assert trio.correct > secded.correct

        # 3. Conclude at system level.
        assessment = assess_scheme(trio)
        assert assessment.meets_iso26262
        point = ExascaleSystem().point(1.0, trio)
        assert point.mtti_hours > ExascaleSystem().point(1.0, secded).mtti_hours


class TestReconfigurableDeployment:
    def test_per_context_code_switching(self):
        """The Section 6.3 scenario: one decoder, detection-priority for one
        context, correction-priority for another."""
        from repro.core.duet_trio import ReconfigurableDuetTrio

        decoder = ReconfigurableDuetTrio()
        data = np.random.default_rng(2).integers(0, 2, 256, dtype=np.uint8)
        entry = decoder.encode(data)
        byte_error = np.zeros(288, dtype=np.uint8)
        byte_error[144:152] = 1

        decoder.mode = "duet"  # safety-critical context: prefer DUE
        assert decoder.decode(entry ^ byte_error).status is DecodeStatus.DETECTED

        decoder.mode = "trio"  # throughput context: prefer correction
        result = decoder.decode(entry ^ byte_error)
        assert result.status is DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

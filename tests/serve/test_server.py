"""The asyncio HTTP daemon, driven over real sockets with a stub runner.

The stub ``execute`` seam keeps these tests fast and deterministic (no
real campaigns), while everything else — routing, JSON validation,
dedupe, scheduling, SSE streaming, backpressure — is the production
code path end to end: ``ServeClient`` → TCP → ``ServeApp``.
"""

import asyncio
import contextlib
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.runner import JobCancelled
from repro.serve.server import ServeApp

pytestmark = pytest.mark.usefixtures("_isolated_run_store")


class StubRunner:
    """An ``execute`` stand-in: blockable, failable, call-counting.

    While the gate is held it polls ``should_abort`` the way the real
    runner's heartbeat bridge does, so cooperative cancellation is
    exercised end to end without a real campaign.
    """

    def __init__(self):
        self.calls = []
        self.gate = threading.Event()
        self.gate.set()  # run-to-completion unless a test blocks it

    def __call__(self, kind, params, *, runs_dir=None, progress=None,
                 progress_interval_s=1.0, default_workers=None,
                 should_abort=None):
        self.calls.append((kind, dict(params)))
        if progress is not None:
            progress(f"[{kind}] working")
        deadline = time.monotonic() + 30.0
        while not self.gate.wait(timeout=0.02):
            if should_abort is not None and should_abort():
                raise JobCancelled("cancel requested")
            if time.monotonic() > deadline:  # pragma: no cover
                raise RuntimeError("test gate never released")
        if params.get("seed") == 666:
            raise RuntimeError("injected job failure")
        return {"report": f"{kind} report seed={params.get('seed')}",
                "run_id": "r-test", "resumed_from": None,
                "cache_hits": 1, "cache_misses": 0}


@contextlib.contextmanager
def live_server(started=True, **app_kwargs):
    """A real ServeApp bound to an ephemeral port on a loop thread."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    state = {}

    async def _start():
        app = ServeApp(**app_kwargs)
        if started:
            await app.startup()
        server = await asyncio.start_server(
            app.handle_connection, "127.0.0.1", 0)
        state["app"] = app
        state["server"] = server
        return server.sockets[0].getsockname()[1]

    port = asyncio.run_coroutine_threadsafe(_start(), loop).result(10)
    try:
        yield state["app"], ServeClient(f"http://127.0.0.1:{port}")
    finally:
        async def _stop():
            state["server"].close()
            await state["server"].wait_closed()
            await state["app"].shutdown(grace_s=10)

        asyncio.run_coroutine_threadsafe(_stop(), loop).result(15)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5)
        loop.close()


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


CAMPAIGN = {"runs": 1, "events": 100}


class TestBasics:
    def test_health_and_stats(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            health = client.health()
            assert health["ok"] is True
            assert health["version"].startswith("repro ")
            stats = client.stats()
            assert stats["slots"] == 1
            assert stats["jobs"] == {}

    def test_unknown_routes_and_jobs_404(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            assert client.request("GET", "/v1/frobnicate")[0] == 404
            with pytest.raises(ServeError, match="404"):
                client.job("job-nope")
            assert client.cancel("job-nope")[0] == 404

    def test_bad_submissions_400(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            status, payload = client.submit("frobnicate", {})
            assert status == 400 and "unknown job kind" in payload["error"]
            status, payload = client.submit(
                "campaign", {"nonsense": 1})
            assert status == 400 and "unknown parameter" in payload["error"]
            conn = client._connect()
            try:
                conn.request("POST", "/v1/jobs", body="{not json",
                             headers={"Content-Type": "application/json"})
                assert conn.getresponse().status == 400
            finally:
                conn.close()


class TestLifecycle:
    def test_submit_watch_complete_and_replay(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=1))
            assert status == 201 and payload["deduped"] is False
            job_id = payload["job"]["job_id"]
            events = list(client.watch(job_id))
            names = [event["event"] for event in events]
            assert names[0] == "queued"
            assert "started" in names
            assert "progress" in names
            assert names[-1] == "completed"
            completed = events[-1]["data"]
            assert completed["run_id"] == "r-test"
            assert completed["cache_hits"] == 1
            job = client.job(job_id)
            assert job["state"] == "completed"
            assert job["result"]["report"] == "campaign report seed=1"
            # a second watch replays the identical closed history
            replay = [e["event"] for e in client.watch(job_id)]
            assert replay == names

    def test_failed_job_reports_error(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, payload = client.submit("campaign",
                                       dict(CAMPAIGN, seed=666))
            job_id = payload["job"]["job_id"]
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "failed"
            assert "injected job failure" in events[-1]["data"]["error"]
            assert client.job(job_id)["error"].startswith("RuntimeError")

    def test_concurrent_identical_submissions_dedupe(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()  # hold the first job in its running state
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            first, second, third = (
                client.submit("campaign", dict(CAMPAIGN, seed=2))
                for _ in range(3))
            assert first[0] == 201
            assert second[0] == 200 and second[1]["deduped"] is True
            assert third[0] == 200
            assert second[1]["job"]["job_id"] == first[1]["job"]["job_id"]
            runner.gate.set()
            job_id = first[1]["job"]["job_id"]
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "completed"
            # one computation for three submissions
            assert len(runner.calls) == 1
            assert client.stats()["deduped"] == 2
            # a fresh submission after completion is a new computation
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=2))
            assert status == 201
            assert payload["job"]["job_id"] != job_id


class TestSchedulingSurface:
    def test_backpressure_429_and_cancel(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         max_queue=1) as (app, client):
            _, running = client.submit("campaign", dict(CAMPAIGN, seed=3))
            running_id = running["job"]["job_id"]
            assert wait_for(lambda: client.job(running_id)["state"]
                            == "running")
            _, queued = client.submit("campaign", dict(CAMPAIGN, seed=4))
            queued_id = queued["job"]["job_id"]
            # the single queue slot is taken: a distinct job bounces
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=5))
            assert status == 429
            assert payload["retry_after_s"] > 0
            # ...but attaching to in-flight identity still works at 429
            status, attach = client.submit("campaign",
                                           dict(CAMPAIGN, seed=4))
            assert status == 200
            assert attach["job"]["job_id"] == queued_id
            # cancel the queued job; a terminal job conflicts
            assert client.cancel(queued_id)[0] == 200
            assert client.job(queued_id)["state"] == "cancelled"
            assert client.cancel(queued_id)[0] == 409
            runner.gate.set()
            events = list(client.watch(running_id))
            assert events[-1]["event"] == "completed"
            assert client.cancel(running_id)[0] == 409
            cancelled = list(client.watch(queued_id))
            assert cancelled[-1]["event"] == "cancelled"

    def test_jobs_listing_filters(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, a = client.submit("campaign", dict(CAMPAIGN, seed=6),
                                 tenant="alice")
            _, b = client.submit("campaign", dict(CAMPAIGN, seed=7),
                                 tenant="bob")
            for payload in (a, b):
                list(client.watch(payload["job"]["job_id"]))
            assert len(client.jobs()) == 2
            alice = client.jobs(tenant="alice")
            assert [j["job_id"] for j in alice] == [a["job"]["job_id"]]
            done = client.jobs(state="completed")
            assert len(done) == 2


class TestCancellation:
    def test_cancel_running_job_unwinds_cooperatively(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, payload = client.submit("campaign", dict(CAMPAIGN, seed=8))
            job_id = payload["job"]["job_id"]
            assert wait_for(lambda: client.job(job_id)["state"]
                            == "running")
            status, body = client.cancel(job_id)
            assert status == 202 and body["cancelling"] is True
            assert body["job"]["cancel_requested"] is True
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "cancelled"
            job = client.job(job_id)
            assert job["state"] == "cancelled"
            assert job["cancel_reason"] == "client cancel"
            # the computation was started exactly once, then aborted
            assert len(runner.calls) == 1
            assert client.cancel(job_id)[0] == 409

    def test_delete_and_post_cancel_are_aliases(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         slots=1) as (app, client):
            _, running = client.submit("campaign", dict(CAMPAIGN, seed=9))
            _, queued = client.submit("campaign", dict(CAMPAIGN, seed=10))
            queued_id = queued["job"]["job_id"]
            status, _ = client.request(
                "POST", f"/v1/jobs/{queued_id}/cancel")
            assert status == 200
            runner.gate.set()
            list(client.watch(running["job"]["job_id"]))


class TestDeadlines:
    def test_deadline_cancels_running_job(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         reaper_interval_s=0.02) as (app, client):
            _, payload = client.submit(
                "campaign", dict(CAMPAIGN, seed=11), deadline_s=0.2)
            job_id = payload["job"]["job_id"]
            assert payload["job"]["deadline_s"] == 0.2
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "cancelled"
            job = client.job(job_id)
            assert job["cancel_reason"] == "deadline exceeded"

    def test_deadline_cancels_queued_job(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         reaper_interval_s=0.02) as (app, client):
            # the single slot is busy; the deadlined job never starts
            client.submit("campaign", dict(CAMPAIGN, seed=12))
            _, payload = client.submit(
                "campaign", dict(CAMPAIGN, seed=13), deadline_s=0.1)
            job_id = payload["job"]["job_id"]
            assert wait_for(lambda: client.job(job_id)["state"]
                            == "cancelled")
            assert client.job(job_id)["cancel_reason"] \
                == "deadline exceeded"
            runner.gate.set()
            # the deadlined job was never handed to the runner
            assert wait_for(lambda: len(runner.calls) == 1)

    def test_bad_deadline_rejected(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            for bad in (0, -1, "soon", True):
                status, payload = client.submit(
                    "campaign", dict(CAMPAIGN, seed=14), deadline_s=bad)
                assert status == 400
                assert "deadline_s" in payload["error"]


class TestReadiness:
    def test_readyz_after_startup(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            status, payload = client.readyz()
            assert status == 200 and payload["ready"] is True
            assert payload["journal"]["records"] == 0  # nothing replayed
            stats = client.stats()
            assert stats["ready"] is True
            assert stats["journal"]["compactions"] == 0

    def test_readyz_503_before_startup(self, tmp_path):
        with live_server(started=False, runs_dir=tmp_path) \
                as (app, client):
            status, payload = client.readyz()
            assert status == 503 and payload["ready"] is False
            # liveness stays green while readiness is not
            assert client.health()["ok"] is True


class TestDurability:
    """Journal-backed restart recovery, driven on the app directly.

    ``ServeApp``'s operations are plain synchronous methods (the daemon
    calls them on its loop thread), so a crash-restart cycle can be
    simulated exactly: populate one app, build a second one over the
    same runs dir, and replay — nothing here touches sockets.
    """

    def _submit(self, app, seed, **extra):
        status, payload = app.submit(
            dict({"kind": "campaign",
                  "params": dict(CAMPAIGN, seed=seed)}, **extra))
        return status, payload

    def test_replay_requeues_and_preserves_dedupe(self, tmp_path):
        app1 = ServeApp(runs_dir=tmp_path, execute=StubRunner())
        status, queued = self._submit(app1, 21, tenant="alice",
                                      deadline_s=120.0)
        assert status == 201
        queued_id = queued["job"]["job_id"]
        # emulate the dispatcher having started a second job, then kill
        status, running = self._submit(app1, 22)
        running_job = app1.registry.get(running["job"]["job_id"])
        running_job.state = "running"
        running_job.started_at = time.time()
        app1.journal.record_running(running_job)

        app2 = ServeApp(runs_dir=tmp_path, execute=StubRunner())
        counters = app2.replay_journal()
        assert counters["requeued"] == 2
        assert counters["recovered_running"] == 1
        assert counters["terminal"] == 0
        restored = app2.registry.get(queued_id)
        assert restored.state == "queued"
        assert restored.tenant == "alice"
        assert restored.deadline_s == 120.0
        assert restored.params == app1.registry.get(queued_id).params
        recovered = app2.registry.get(running_job.job_id)
        assert recovered.state == "queued" and recovered.recovered
        assert app2.scheduler.pending == 2
        # dedupe survives the restart: same identity -> original job id
        status, attach = self._submit(app2, 21, tenant="alice")
        assert status == 200 and attach["deduped"] is True
        assert attach["job"]["job_id"] == queued_id

    def test_replay_restores_terminal_history_and_event_ids(
            self, tmp_path):
        app1 = ServeApp(runs_dir=tmp_path, execute=StubRunner())
        status, payload = self._submit(app1, 23)
        job = app1.registry.get(payload["job"]["job_id"])
        job.state = "running"
        job.started_at = time.time()
        app1.journal.record_running(job)
        job.channel.publish("progress", {"line": "w"})
        job.state = "completed"
        job.finished_at = time.time()
        job.result = {"run_id": "r-hist", "report": "not journaled"}
        app1.registry.finish(job)
        app1.journal.record_terminal(job)
        pre_crash_last_id = job.channel.last_id

        app2 = ServeApp(runs_dir=tmp_path, execute=StubRunner())
        counters = app2.replay_journal()
        assert counters["terminal"] == 1 and counters["requeued"] == 0
        restored = app2.registry.get(job.job_id)
        assert restored.state == "completed"
        assert restored.result == {"run_id": "r-hist"}
        # ids stay monotonic across the restart, and a late watcher
        # still receives the (republished) terminal event
        assert restored.channel.last_id > pre_crash_last_id >= 1
        assert restored.channel.events[-1]["event"] == "completed"
        assert restored.channel.closed
        # a terminal identity does not absorb new submissions
        status, payload = self._submit(app2, 23)
        assert status == 201
        assert payload["job"]["job_id"] != job.job_id

    def test_compaction_then_replay_is_identity(self, tmp_path):
        app1 = ServeApp(runs_dir=tmp_path, execute=StubRunner())
        self._submit(app1, 24)
        status, payload = self._submit(app1, 25)
        failed = app1.registry.get(payload["job"]["job_id"])
        failed.state = "failed"
        failed.error = "RuntimeError: boom"
        failed.finished_at = time.time()
        app1.registry.finish(failed)
        app1.journal.record_terminal(failed)

        before = app1.journal.replay()
        app1.journal.compact(before.jobs)
        after = app1.journal.replay()
        assert [j.to_dict() for j in after.jobs] \
            == [j.to_dict() for j in before.jobs]
        assert after.requeued == before.requeued == 1
        assert after.terminal == before.terminal == 1


class TestClientRetries:
    def test_connection_refused_retries_with_backoff(self):
        sleeps = []
        # a port nothing listens on: every attempt is connection-refused
        client = ServeClient("http://127.0.0.1:9", retries=3,
                             sleep=sleeps.append, draw=lambda: 0.0)
        with pytest.raises(ServeError, match="cannot reach"):
            client.request("GET", "/v1/stats")
        policy = client.retry_policy
        assert sleeps == [policy.backoff_s(1, 0.0),
                          policy.backoff_s(2, 0.0),
                          policy.backoff_s(3, 0.0)]
        assert sleeps == sorted(sleeps)  # exponential, not constant

    def test_429_retried_until_capacity(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         max_queue=1) as (app, client):
            _, first = client.submit("campaign", dict(CAMPAIGN, seed=31))
            first_id = first["job"]["job_id"]
            assert wait_for(lambda: client.job(first_id)["state"]
                            == "running")
            _, queued = client.submit("campaign", dict(CAMPAIGN, seed=32))
            queued_id = queued["job"]["job_id"]

            sleeps = []

            def free_slot_then_sleep(_s):
                # first backoff: release the queue slot, as a queued-job
                # cancellation would in production
                sleeps.append(_s)
                client.cancel(queued_id)

            retrying = ServeClient(client.url, retries=3,
                                   sleep=free_slot_then_sleep,
                                   draw=lambda: 0.0)
            status, payload = retrying.submit(
                "campaign", dict(CAMPAIGN, seed=33))
            assert status == 201
            assert len(sleeps) == 1
            runner.gate.set()
            list(client.watch(payload["job"]["job_id"]))

    def test_watch_resumes_from_last_event_id(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, payload = client.submit("campaign", dict(CAMPAIGN, seed=34))
            job_id = payload["job"]["job_id"]
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "completed"
            # a reconnect with Last-Event-ID replays only the tail
            resume_after = events[1]["id"]
            tail = list(client._watch_once(job_id, resume_after, 10.0))
            assert [e["id"] for e in tail] \
                == [e["id"] for e in events if e["id"] > resume_after]
            # an id beyond the rebuilt history still yields the terminal
            # event (the closed-channel exception), never a hung stream
            beyond = list(client._watch_once(
                job_id, events[-1]["id"] + 50, 10.0))
            assert [e["event"] for e in beyond] == ["completed"]

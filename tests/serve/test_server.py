"""The asyncio HTTP daemon, driven over real sockets with a stub runner.

The stub ``execute`` seam keeps these tests fast and deterministic (no
real campaigns), while everything else — routing, JSON validation,
dedupe, scheduling, SSE streaming, backpressure — is the production
code path end to end: ``ServeClient`` → TCP → ``ServeApp``.
"""

import asyncio
import contextlib
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServeApp

pytestmark = pytest.mark.usefixtures("_isolated_run_store")


class StubRunner:
    """An ``execute`` stand-in: blockable, failable, call-counting."""

    def __init__(self):
        self.calls = []
        self.gate = threading.Event()
        self.gate.set()  # run-to-completion unless a test blocks it

    def __call__(self, kind, params, *, runs_dir=None, progress=None,
                 progress_interval_s=1.0, default_workers=None):
        self.calls.append((kind, dict(params)))
        if progress is not None:
            progress(f"[{kind}] working")
        if not self.gate.wait(timeout=30.0):  # pragma: no cover
            raise RuntimeError("test gate never released")
        if params.get("seed") == 666:
            raise RuntimeError("injected job failure")
        return {"report": f"{kind} report seed={params.get('seed')}",
                "run_id": "r-test", "resumed_from": None,
                "cache_hits": 1, "cache_misses": 0}


@contextlib.contextmanager
def live_server(**app_kwargs):
    """A real ServeApp bound to an ephemeral port on a loop thread."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    state = {}

    async def _start():
        app = ServeApp(**app_kwargs)
        server = await asyncio.start_server(
            app.handle_connection, "127.0.0.1", 0)
        state["app"] = app
        state["server"] = server
        state["dispatch"] = asyncio.create_task(app.dispatch_loop())
        return server.sockets[0].getsockname()[1]

    port = asyncio.run_coroutine_threadsafe(_start(), loop).result(10)
    try:
        yield state["app"], ServeClient(f"http://127.0.0.1:{port}")
    finally:
        async def _stop():
            state["server"].close()
            await state["server"].wait_closed()
            await state["app"].shutdown(grace_s=10)
            state["dispatch"].cancel()

        asyncio.run_coroutine_threadsafe(_stop(), loop).result(15)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(5)
        loop.close()


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


CAMPAIGN = {"runs": 1, "events": 100}


class TestBasics:
    def test_health_and_stats(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            health = client.health()
            assert health["ok"] is True
            assert health["version"].startswith("repro ")
            stats = client.stats()
            assert stats["slots"] == 1
            assert stats["jobs"] == {}

    def test_unknown_routes_and_jobs_404(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            assert client.request("GET", "/v1/frobnicate")[0] == 404
            with pytest.raises(ServeError, match="404"):
                client.job("job-nope")
            assert client.cancel("job-nope")[0] == 404

    def test_bad_submissions_400(self, tmp_path):
        with live_server(runs_dir=tmp_path) as (app, client):
            status, payload = client.submit("frobnicate", {})
            assert status == 400 and "unknown job kind" in payload["error"]
            status, payload = client.submit(
                "campaign", {"nonsense": 1})
            assert status == 400 and "unknown parameter" in payload["error"]
            conn = client._connect()
            try:
                conn.request("POST", "/v1/jobs", body="{not json",
                             headers={"Content-Type": "application/json"})
                assert conn.getresponse().status == 400
            finally:
                conn.close()


class TestLifecycle:
    def test_submit_watch_complete_and_replay(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=1))
            assert status == 201 and payload["deduped"] is False
            job_id = payload["job"]["job_id"]
            events = list(client.watch(job_id))
            names = [event["event"] for event in events]
            assert names[0] == "queued"
            assert "started" in names
            assert "progress" in names
            assert names[-1] == "completed"
            completed = events[-1]["data"]
            assert completed["run_id"] == "r-test"
            assert completed["cache_hits"] == 1
            job = client.job(job_id)
            assert job["state"] == "completed"
            assert job["result"]["report"] == "campaign report seed=1"
            # a second watch replays the identical closed history
            replay = [e["event"] for e in client.watch(job_id)]
            assert replay == names

    def test_failed_job_reports_error(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, payload = client.submit("campaign",
                                       dict(CAMPAIGN, seed=666))
            job_id = payload["job"]["job_id"]
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "failed"
            assert "injected job failure" in events[-1]["data"]["error"]
            assert client.job(job_id)["error"].startswith("RuntimeError")

    def test_concurrent_identical_submissions_dedupe(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()  # hold the first job in its running state
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            first, second, third = (
                client.submit("campaign", dict(CAMPAIGN, seed=2))
                for _ in range(3))
            assert first[0] == 201
            assert second[0] == 200 and second[1]["deduped"] is True
            assert third[0] == 200
            assert second[1]["job"]["job_id"] == first[1]["job"]["job_id"]
            runner.gate.set()
            job_id = first[1]["job"]["job_id"]
            events = list(client.watch(job_id))
            assert events[-1]["event"] == "completed"
            # one computation for three submissions
            assert len(runner.calls) == 1
            assert client.stats()["deduped"] == 2
            # a fresh submission after completion is a new computation
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=2))
            assert status == 201
            assert payload["job"]["job_id"] != job_id


class TestSchedulingSurface:
    def test_backpressure_429_and_cancel(self, tmp_path):
        runner = StubRunner()
        runner.gate.clear()
        with live_server(runs_dir=tmp_path, execute=runner,
                         max_queue=1) as (app, client):
            _, running = client.submit("campaign", dict(CAMPAIGN, seed=3))
            running_id = running["job"]["job_id"]
            assert wait_for(lambda: client.job(running_id)["state"]
                            == "running")
            _, queued = client.submit("campaign", dict(CAMPAIGN, seed=4))
            queued_id = queued["job"]["job_id"]
            # the single queue slot is taken: a distinct job bounces
            status, payload = client.submit("campaign",
                                            dict(CAMPAIGN, seed=5))
            assert status == 429
            assert payload["retry_after_s"] > 0
            # ...but attaching to in-flight identity still works at 429
            status, attach = client.submit("campaign",
                                           dict(CAMPAIGN, seed=4))
            assert status == 200
            assert attach["job"]["job_id"] == queued_id
            # cancel the queued job; cancelling the running one conflicts
            assert client.cancel(queued_id)[0] == 200
            assert client.job(queued_id)["state"] == "cancelled"
            assert client.cancel(queued_id)[0] == 409
            assert client.cancel(running_id)[0] == 409
            runner.gate.set()
            events = list(client.watch(running_id))
            assert events[-1]["event"] == "completed"
            cancelled = list(client.watch(queued_id))
            assert cancelled[-1]["event"] == "cancelled"

    def test_jobs_listing_filters(self, tmp_path):
        runner = StubRunner()
        with live_server(runs_dir=tmp_path, execute=runner) \
                as (app, client):
            _, a = client.submit("campaign", dict(CAMPAIGN, seed=6),
                                 tenant="alice")
            _, b = client.submit("campaign", dict(CAMPAIGN, seed=7),
                                 tenant="bob")
            for payload in (a, b):
                list(client.watch(payload["job"]["job_id"]))
            assert len(client.jobs()) == 2
            alice = client.jobs(tenant="alice")
            assert [j["job_id"] for j in alice] == [a["job"]["job_id"]]
            done = client.jobs(state="completed")
            assert len(done) == 2

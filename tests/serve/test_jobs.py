"""Job model: normalization, identity, dedupe registry, SSE channels."""

import pytest

from repro.serve.jobs import (
    COMPLETED,
    FAILED,
    JobError,
    JobRegistry,
    UnknownJobError,
    job_identity,
    new_job_id,
    normalize_params,
)
from repro.serve.sse import BroadcastChannel, encode_sse


class TestNormalization:
    def test_defaults_filled(self):
        params = normalize_params("campaign", {})
        assert params == {"runs": 3, "seed": 2021, "events": 3000,
                          "engine": "columnar", "stats": "materialize",
                          "workers": None, "chunk_timeout": None,
                          "fleet_size": None, "fleet_scheme": "trio"}

    def test_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            normalize_params("frobnicate", {})

    def test_unknown_parameter(self):
        with pytest.raises(JobError, match="unknown parameter"):
            normalize_params("fig8", {"smaples": 100})

    def test_required_parameter(self):
        with pytest.raises(JobError, match="required"):
            normalize_params("evaluate", {})

    def test_type_coercion_and_rejection(self):
        params = normalize_params("evaluate",
                                  {"scheme": "duet", "samples": 100.0})
        assert params["samples"] == 100 and isinstance(params["samples"], int)
        with pytest.raises(JobError, match="integer"):
            normalize_params("evaluate", {"scheme": "duet",
                                          "samples": 100.5})
        with pytest.raises(JobError, match="integer"):
            normalize_params("evaluate", {"scheme": "duet",
                                          "samples": True})
        with pytest.raises(JobError, match="string"):
            normalize_params("evaluate", {"scheme": 7})

    def test_choices_enforced(self):
        with pytest.raises(JobError, match="one of"):
            normalize_params("campaign", {"engine": "warp"})


class TestIdentity:
    def test_execution_params_excluded(self):
        base = normalize_params("campaign", {})
        tuned = normalize_params(
            "campaign", {"engine": "shm", "stats": "streaming",
                         "workers": 8, "chunk_timeout": 30.0})
        assert job_identity("campaign", base) \
            == job_identity("campaign", tuned)

    def test_result_bearing_params_included(self):
        base = normalize_params("campaign", {})
        other = normalize_params("campaign", {"seed": 1})
        assert job_identity("campaign", base) \
            != job_identity("campaign", other)

    def test_job_ids_unique(self):
        assert new_job_id() != new_job_id()


class TestRegistry:
    def _create(self, registry, key="k1", **kwargs):
        defaults = dict(tenant="default", priority=0, key=key)
        defaults.update(kwargs)
        return registry.create("fig8", {"samples": 10}, **defaults)

    def test_identical_inflight_submission_attaches(self):
        registry = JobRegistry()
        job, attached = self._create(registry)
        assert not attached
        again, attached = self._create(registry)
        assert attached
        assert again is job
        assert job.attached == 2
        assert registry.deduped == 1

    def test_finished_job_does_not_absorb(self):
        registry = JobRegistry()
        job, _ = self._create(registry)
        job.state = COMPLETED
        registry.finish(job)
        fresh, attached = self._create(registry)
        assert not attached
        assert fresh is not job

    def test_discard_releases_key(self):
        registry = JobRegistry()
        job, _ = self._create(registry)
        registry.discard(job)
        with pytest.raises(UnknownJobError):
            registry.get(job.job_id)
        fresh, attached = self._create(registry)
        assert not attached

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownJobError):
            JobRegistry().get("job-nope")

    def test_filters_and_counts(self):
        registry = JobRegistry()
        a, _ = self._create(registry, key="ka", tenant="alice")
        b, _ = self._create(registry, key="kb", tenant="bob")
        b.state = FAILED
        assert [j.job_id for j in registry.jobs(tenant="alice")] \
            == [a.job_id]
        assert [j.job_id for j in registry.jobs(state=FAILED)] \
            == [b.job_id]
        assert registry.state_counts() == {"queued": 1, "failed": 1}

    def test_history_trims_only_terminal_jobs(self):
        registry = JobRegistry(history=2)
        jobs = [self._create(registry, key=f"k{n}")[0] for n in range(4)]
        # nothing evicted while everything is live
        assert len(registry.jobs()) == 4
        for job in jobs[:3]:
            job.state = COMPLETED
            registry.finish(job)
        survivors = {j.job_id for j in registry.jobs()}
        assert jobs[3].job_id in survivors  # live job never evicted
        assert len(survivors) == 2


class TestBroadcastChannel:
    def test_encode_sse_frame(self):
        frame = encode_sse({"id": 3, "event": "progress",
                            "data": {"line": "x"}})
        assert frame == b'id: 3\nevent: progress\ndata: {"line": "x"}\n\n'

    def test_history_replay_then_live(self):
        channel = BroadcastChannel()
        channel.publish("queued", {})
        queue = channel.subscribe()
        channel.publish("started", {})
        names = [queue.get_nowait()["event"] for _ in range(2)]
        assert names == ["queued", "started"]

    def test_terminal_event_closes_channel(self):
        channel = BroadcastChannel()
        queue = channel.subscribe()
        channel.publish("completed", {})
        assert channel.closed
        assert queue.get_nowait()["event"] == "completed"
        assert queue.get_nowait() is None  # end-of-stream sentinel

    def test_late_subscriber_sees_history_and_sentinel(self):
        channel = BroadcastChannel()
        channel.publish("queued", {})
        channel.publish("failed", {"error": "boom"})
        queue = channel.subscribe()
        assert queue.get_nowait()["event"] == "queued"
        assert queue.get_nowait()["event"] == "failed"
        assert queue.get_nowait() is None

    def test_event_ids_are_sequential(self):
        channel = BroadcastChannel()
        first = channel.publish("queued", {})
        second = channel.publish("progress", {})
        assert (first["id"], second["id"]) == (1, 2)

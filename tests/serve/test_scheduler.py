"""Fair-share scheduler: WDRR across tenants, priority within, bounds."""

import pytest

from repro.serve.jobs import CANCELLED, QUEUED, Job
from repro.serve.scheduler import FairShareScheduler, QueueFull


def make_job(n, tenant="default", priority=0):
    return Job(job_id=f"j{n}", kind="campaign", params={},
               tenant=tenant, priority=priority, key=f"k{n}")


def drain(sched, limit=100):
    served = []
    while len(served) < limit:
        job = sched.next_job()
        if job is None:
            break
        served.append(job)
    return served


class TestPriority:
    def test_descending_priority_within_tenant(self):
        sched = FairShareScheduler()
        low, high, mid = make_job(1, priority=0), make_job(2, priority=5), \
            make_job(3, priority=2)
        for job in (low, high, mid):
            sched.submit(job)
        assert drain(sched) == [high, mid, low]

    def test_submission_order_breaks_priority_ties(self):
        sched = FairShareScheduler()
        jobs = [make_job(n) for n in range(4)]
        for job in jobs:
            sched.submit(job)
        assert drain(sched) == jobs


class TestFairShare:
    def test_single_tenant_is_fifo(self):
        sched = FairShareScheduler()
        jobs = [make_job(n) for n in range(5)]
        for job in jobs:
            sched.submit(job)
        assert drain(sched) == jobs

    def test_weighted_2_to_1_drain_ratio(self):
        sched = FairShareScheduler(weights={"a": 2.0, "b": 1.0})
        a_jobs = [make_job(f"a{n}", tenant="a") for n in range(6)]
        b_jobs = [make_job(f"b{n}", tenant="b") for n in range(6)]
        for job in a_jobs:
            sched.submit(job)
        for job in b_jobs:
            sched.submit(job)
        served = drain(sched)
        assert len(served) == 12
        # Under contention the weight-2 tenant drains twice as fast: the
        # first 9 served jobs are 6 of a's against 3 of b's...
        head = [job.tenant for job in served[:9]]
        assert head.count("a") == 6
        assert head.count("b") == 3
        # ...and once a is empty, b gets every remaining slot.
        assert [job.tenant for job in served[9:]] == ["b", "b", "b"]

    def test_equal_weights_interleave(self):
        sched = FairShareScheduler()
        for n in range(4):
            sched.submit(make_job(f"a{n}", tenant="a"))
            sched.submit(make_job(f"b{n}", tenant="b"))
        tenants = [job.tenant for job in drain(sched)]
        assert tenants == ["a", "b"] * 4

    def test_idle_tenant_deficit_resets(self):
        # A tenant that drains and comes back starts from zero credit —
        # no banked burst past the tenant that stayed busy.
        sched = FairShareScheduler(weights={"a": 5.0})
        sched.submit(make_job("a0", tenant="a"))
        assert drain(sched)  # a drains and retires from the ring
        assert sched._deficit["a"] == 0.0

    def test_empty_queue_returns_none(self):
        assert FairShareScheduler().next_job() is None


class TestBoundsAndCancel:
    def test_queue_full_raises(self):
        sched = FairShareScheduler(max_depth=2)
        sched.submit(make_job(1))
        sched.submit(make_job(2))
        with pytest.raises(QueueFull):
            sched.submit(make_job(3))
        assert sched.rejected == 1
        assert sched.pending == 2

    def test_cancel_skips_job(self):
        sched = FairShareScheduler()
        keep, drop = make_job(1), make_job(2)
        sched.submit(keep)
        sched.submit(drop)
        assert sched.cancel(drop)
        assert drop.state == CANCELLED
        assert sched.pending == 1
        assert drain(sched) == [keep]
        assert keep.state == QUEUED

    def test_cancel_unknown_job_is_false(self):
        sched = FairShareScheduler()
        assert not sched.cancel(make_job(1))

    def test_depth_and_counters(self):
        sched = FairShareScheduler(max_depth=8)
        sched.submit(make_job(1, tenant="x"))
        sched.submit(make_job(2, tenant="y"))
        assert sched.depth() == 2
        assert sched.depth("x") == 1
        counters = sched.counters()
        assert counters["queue_pending"] == 2
        assert counters["queue_tenants"] == ["x", "y"]
        drain(sched)
        assert sched.counters()["queue_served"] == 2

"""The write-ahead job journal: replay semantics, damage tolerance,
forward compatibility, and compaction identity."""

import json

import pytest

from repro import faults
from repro.faults import FaultPlan, InjectedFault
from repro.serve.jobs import JobRegistry
from repro.serve.journal import JOURNAL_SCHEMA, JobJournal


@pytest.fixture
def journal(tmp_path):
    return JobJournal(tmp_path)


@pytest.fixture
def registry():
    return JobRegistry()


def submit(journal, registry, seed, **create_kwargs):
    """One journaled submission with its 'queued' SSE event published."""
    job, attached = registry.create(
        "campaign", {"runs": 1, "events": 100, "seed": seed},
        tenant=create_kwargs.pop("tenant", "default"),
        priority=create_kwargs.pop("priority", 0),
        key=create_kwargs.pop("key", f"key-{seed}"), **create_kwargs)
    assert not attached
    journal.record_submitted(job)
    job.channel.publish("queued", {"job_id": job.job_id})
    return job


class TestRoundTrip:
    def test_full_lifecycle_replays_faithfully(self, journal, registry):
        job = submit(journal, registry, 1, deadline_s=60.0, priority=3)
        job.state = "running"
        job.started_at = 100.0
        journal.record_running(job)
        job.channel.publish("progress", {"line": "w"})
        job.state = "completed"
        job.finished_at = 101.0
        job.result = {"run_id": "r-1", "report": "stays in the store"}
        journal.record_terminal(job)

        replay = journal.replay()
        assert replay.counters()["records"] == 3
        assert replay.terminal == 1 and replay.requeued == 0
        (restored,) = replay.jobs
        assert restored.job_id == job.job_id
        assert restored.kind == "campaign"
        assert restored.params == job.params
        assert restored.priority == 3
        assert restored.deadline_s == 60.0
        assert restored.state == "completed"
        assert restored.started_at == 100.0
        assert restored.finished_at == 101.0
        # only the result *pointer* is journaled, never the report body
        assert restored.result == {"run_id": "r-1"}
        # event ids continue after the highest journaled id
        assert restored.channel.base_id == 2

    def test_interrupted_jobs_requeue_with_recovery_flags(
            self, journal, registry):
        queued = submit(journal, registry, 2)
        running = submit(journal, registry, 3)
        running.state = "running"
        running.started_at = 100.0
        journal.record_running(running)
        journal.record_cancel_requested(running, "client cancel")

        replay = journal.replay()
        assert replay.requeued == 2 and replay.recovered_running == 1
        by_id = {j.job_id: j for j in replay.jobs}
        assert by_id[queued.job_id].state == "queued"
        assert not by_id[queued.job_id].recovered
        recovered = by_id[running.job_id]
        assert recovered.state == "queued"  # back on the queue
        assert recovered.recovered and recovered.started_at is None
        # a pre-crash cancellation request survives the restart
        assert recovered.cancel_requested
        assert recovered.cancel_reason == "client cancel"

    def test_missing_journal_is_an_empty_replay(self, journal):
        replay = journal.replay()
        assert replay.jobs == [] and replay.counters()["records"] == 0


class TestDamageTolerance:
    def test_torn_final_record_ends_the_valid_prefix(
            self, journal, registry):
        submit(journal, registry, 4)
        intact = journal.path.read_text()
        with open(journal.path, "a") as handle:
            handle.write('{"schema": 1, "type": "running", "job_')

        replay = journal.replay()
        assert replay.torn_tail == 1
        assert len(replay.jobs) == 1  # everything before the tear holds
        assert replay.jobs[0].state == "queued"
        # ... and the damage is stable: replay does not modify the file
        assert journal.path.read_text().startswith(intact)

    def test_future_schema_and_unknown_types_are_skipped(
            self, journal, registry):
        job = submit(journal, registry, 5)
        with open(journal.path, "a") as handle:
            handle.write(json.dumps({
                "schema": JOURNAL_SCHEMA + 1, "type": "submitted",
                "job_id": "job-from-the-future", "kind": "campaign",
                "params": {}, "key": "k-future"}) + "\n")
            handle.write(json.dumps({
                "schema": JOURNAL_SCHEMA, "type": "paused",
                "job_id": job.job_id}) + "\n")
            handle.write(json.dumps({
                "schema": JOURNAL_SCHEMA, "type": "running",
                "job_id": "job-never-submitted"}) + "\n")

        replay = journal.replay()
        assert replay.skipped_unknown == 2
        assert replay.invalid == 1  # state record without a submission
        assert [j.job_id for j in replay.jobs] == [job.job_id]

    def test_torn_append_faultpoint(self, journal, registry):
        faults.install(FaultPlan.parse(
            "serve.journal.append:mode=torn,then=raise,times=1"),
            export_env=False)
        try:
            with pytest.raises(InjectedFault):
                submit(journal, registry, 6)
            submit(journal, registry, 7)
        finally:
            faults.uninstall(scrub_env=False)
        # The torn half-line is unparseable: it ends the valid prefix,
        # exactly like a kill between write() and fsync() would.
        replay = journal.replay()
        assert replay.torn_tail == 1
        assert replay.jobs == []

    def test_compact_faultpoint_keeps_the_old_journal(
            self, journal, registry):
        job = submit(journal, registry, 8)
        before = journal.path.read_text()
        faults.install(FaultPlan.parse(
            "serve.journal.compact.pre_rename:mode=raise"),
            export_env=False)
        try:
            with pytest.raises(InjectedFault):
                journal.compact([job])
        finally:
            faults.uninstall(scrub_env=False)
        assert journal.path.read_text() == before  # rename never ran
        assert journal.replay().jobs[0].job_id == job.job_id


class TestCompaction:
    def test_replay_of_compacted_journal_is_identical(
            self, journal, registry):
        queued = submit(journal, registry, 9)
        done = submit(journal, registry, 10)
        done.state = "running"
        done.started_at = 100.0
        journal.record_running(done)
        done.state = "failed"
        done.error = "RuntimeError: boom"
        done.finished_at = 101.0
        journal.record_terminal(done)
        # at-least-once duplicates compaction must fold away
        journal.record_cancel_requested(queued, "never acted on")
        journal.record_cancel_requested(queued, "never acted on")

        before = journal.replay()
        appended_records = journal.path.read_text().count("\n")
        written = journal.compact(before.jobs)
        assert written < appended_records  # it actually shrank
        after = journal.replay()
        assert [j.to_dict() for j in after.jobs] \
            == [j.to_dict() for j in before.jobs]
        assert after.counters()["requeued"] == before.counters()["requeued"]
        assert after.counters()["terminal"] == before.counters()["terminal"]

    def test_compacting_nothing_creates_no_file(self, journal):
        assert journal.compact([]) == 0
        assert not journal.path.exists()

"""End-to-end daemon smoke: one real ``repro serve`` subprocess, three
concurrent clients submitting the *same* small campaign.

Asserts the PR's headline contract: exactly one computation (one
completed campaign manifest in the store), every client gets the same
result and the same terminal SSE event, the daemon drains to exit 0 on
SIGTERM, and nothing is left behind in /dev/shm.
"""

import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.core.shm import orphaned_segments
from repro.runs.store import RunStore
from repro.serve.client import ServeClient

pytestmark = pytest.mark.slow

CAMPAIGN = {"runs": 1, "events": 400, "seed": 77, "workers": 2}


def _spawn_daemon(runs_dir: Path, ready: Path, log: Path):
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    handle = open(log, "w")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--ready-file", str(ready), "--runs-dir", str(runs_dir),
         "--workers", "2"],
        env=env, stdout=handle, stderr=subprocess.STDOUT)
    handle.close()
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if ready.exists():
            return daemon
        if daemon.poll() is not None:
            raise AssertionError(
                f"daemon exited {daemon.returncode}: {log.read_text()}")
        time.sleep(0.05)
    daemon.kill()
    raise AssertionError("daemon never became ready")


def _submit_and_watch(url: str):
    client = ServeClient(url)
    status, payload = client.submit("campaign", CAMPAIGN)
    job_id = payload["job"]["job_id"]
    final = None
    for event in client.watch(job_id, timeout=300):
        if event["event"] in ("completed", "failed", "cancelled"):
            final = event
    report = (client.job(job_id).get("result") or {}).get("report")
    return status, job_id, final, report


def test_three_clients_one_computation(tmp_path):
    runs_dir = tmp_path / "store"
    ready = tmp_path / "ready.txt"
    daemon = _spawn_daemon(runs_dir, ready, tmp_path / "serve.log")
    try:
        url = ready.read_text().strip()
        with ThreadPoolExecutor(max_workers=3) as pool:
            outcomes = list(pool.map(
                lambda _: _submit_and_watch(url), range(3)))

        statuses = sorted(outcome[0] for outcome in outcomes)
        assert statuses == [200, 200, 201]  # one new job, two attached
        assert len({outcome[1] for outcome in outcomes}) == 1

        finals = [outcome[2] for outcome in outcomes]
        assert all(final["event"] == "completed" for final in finals)
        # every client saw the *same* completion event (same id, run)
        assert len({(final["id"],
                     final["data"]["run_id"]) for final in finals}) == 1

        reports = {outcome[3] for outcome in outcomes}
        assert len(reports) == 1
        assert "Event classes" in reports.pop()

        # exactly one computation: one completed campaign manifest
        manifests = [m for m in RunStore(runs_dir).list_runs()
                     if m.command == "campaign"
                     and m.status == "completed"]
        assert len(manifests) == 1

        stats = ServeClient(url).stats()
        assert stats["deduped"] == 2
        assert stats["jobs"] == {"completed": 1}
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=60) == 0
        else:  # pragma: no cover - daemon died mid-test
            pytest.fail(f"daemon died early: exit {daemon.returncode}")

    leaked = [name for name in orphaned_segments()
              if f"-{daemon.pid}-" in name]
    assert leaked == []

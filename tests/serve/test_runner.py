"""The serve runner: content keys, resume discovery, CLI-identical reports."""

import pytest

from repro.runs.session import RunSession
from repro.runs.store import RunStore
from repro.serve.jobs import JobError, normalize_params
from repro.serve.runner import (
    JobCancelled,
    build_namespace,
    execute_job,
    find_resumable,
    job_keys,
)

EVAL = normalize_params("evaluate", {"scheme": "duet", "samples": 200,
                                     "seed": 11})


def report_lines(report):
    """Statistics lines only (run-store chatter carries run ids)."""
    return [line for line in report.splitlines()
            if line.strip() and not line.startswith("[repro")]


class TestNamespace:
    def test_matches_cli_shape(self):
        args = build_namespace("evaluate", EVAL, runs_dir="/tmp/x",
                               progress=lambda line: None,
                               progress_interval_s=2.0)
        assert args.command == "evaluate"
        assert args.cache is True
        assert args.runs_dir == "/tmp/x"
        assert args.heartbeat == 2.0
        assert args.scheme == "duet"
        assert args.inject_faults is None

    def test_no_progress_disables_heartbeat(self):
        args = build_namespace("evaluate", EVAL)
        assert args.heartbeat == 0.0
        assert args.heartbeat_callback is None


class TestJobKeys:
    def test_identity_and_execution_params_split(self, tmp_path):
        keys = job_keys("evaluate", EVAL, runs_dir=tmp_path)
        tuned = dict(EVAL, workers=8, cell_timeout=5.0)
        assert job_keys("evaluate", tuned, runs_dir=tmp_path)["key"] \
            == keys["key"]
        reseeded = dict(EVAL, seed=12)
        assert job_keys("evaluate", reseeded, runs_dir=tmp_path)["key"] \
            != keys["key"]

    def test_artifact_counts(self, tmp_path):
        assert job_keys("evaluate", EVAL,
                        runs_dir=tmp_path)["artifacts"] == 7
        fig8 = normalize_params("fig8", {"samples": 100})
        assert job_keys("fig8", fig8, runs_dir=tmp_path)["artifacts"] > 7
        campaign = normalize_params("campaign", {})
        assert job_keys("campaign", campaign,
                        runs_dir=tmp_path)["artifacts"] == 1

    def test_unknown_scheme_rejected(self, tmp_path):
        params = normalize_params("evaluate", {"scheme": "duet"})
        params["scheme"] = "nonsense"
        with pytest.raises(JobError, match="unknown scheme"):
            job_keys("evaluate", params, runs_dir=tmp_path)


class TestExecuteJob:
    def test_report_and_precache_lifecycle(self, tmp_path):
        assert not job_keys("evaluate", EVAL,
                            runs_dir=tmp_path)["precached"]
        result = execute_job("evaluate", EVAL, runs_dir=tmp_path)
        assert "Table-1 weighted" in result["report"]
        assert result["cache_misses"] == 7
        assert result["resumed_from"] is None
        assert job_keys("evaluate", EVAL, runs_dir=tmp_path)["precached"]

    def test_rerun_hits_cache_with_identical_statistics(self, tmp_path):
        first = execute_job("evaluate", EVAL, runs_dir=tmp_path)
        second = execute_job("evaluate", EVAL, runs_dir=tmp_path)
        assert second["cache_hits"] == 7
        assert second["cache_misses"] == 0
        assert report_lines(first["report"]) \
            == report_lines(second["report"])

    def test_progress_callback_is_threaded_through(self, tmp_path):
        lines = []
        execute_job("evaluate", EVAL, runs_dir=tmp_path,
                    progress=lines.append, progress_interval_s=0.0001)
        assert lines  # heartbeat ticked at least once at this cadence
        assert any("cells" in line for line in lines)

    def test_should_abort_seam_cancels_mid_run(self, tmp_path):
        lines = []
        with pytest.raises(JobCancelled, match="cancel requested"):
            execute_job("evaluate", EVAL, runs_dir=tmp_path,
                        progress=lines.append,
                        progress_interval_s=0.0001,
                        should_abort=lambda: True)
        # the abort check runs *before* the heartbeat line is forwarded
        assert lines == []
        # the abandoned run stays resumable: a clean re-run attaches
        result = execute_job("evaluate", EVAL, runs_dir=tmp_path)
        assert result["resumed_from"] is not None
        assert "Table-1 weighted" in result["report"]


class TestFindResumable:
    def test_no_runs_means_none(self, tmp_path):
        store = RunStore(tmp_path)
        assert find_resumable(store, "evaluate", {"x": 1}) is None

    def test_interrupted_matching_run_found(self, tmp_path):
        config = {"scheme": "duet", "samples": 200, "seed": 11,
                  "workers": None, "cell_timeout": None}
        session = RunSession.begin("evaluate", config, root=tmp_path)
        # never finished — the manifest stays "running" (a crash)
        store = RunStore(tmp_path)
        assert find_resumable(store, "evaluate", config) == session.run_id
        # different config or command does not match
        assert find_resumable(store, "evaluate",
                              dict(config, seed=99)) is None
        assert find_resumable(store, "campaign", config) is None

    def test_completed_run_not_resumed(self, tmp_path):
        config = {"scheme": "duet", "samples": 200, "seed": 11,
                  "workers": None, "cell_timeout": None}
        session = RunSession.begin("evaluate", config, root=tmp_path)
        session.finish("completed")
        assert find_resumable(RunStore(tmp_path), "evaluate",
                              config) is None

    def test_execute_job_resumes_interrupted_run(self, tmp_path):
        config = {"scheme": "duet", "samples": 200, "seed": 11,
                  "workers": None, "cell_timeout": None}
        crashed = RunSession.begin("evaluate", config, root=tmp_path)
        result = execute_job("evaluate", EVAL, runs_dir=tmp_path)
        assert result["resumed_from"] == crashed.run_id

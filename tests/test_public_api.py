"""Public-API surface tests: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.gf",
    "repro.codes",
    "repro.core",
    "repro.errormodel",
    "repro.dram",
    "repro.beam",
    "repro.hardware",
    "repro.system",
    "repro.analysis",
]

MODULES = [
    "repro.gf.gf2",
    "repro.gf.gf256",
    "repro.gf.polynomial",
    "repro.codes.base32",
    "repro.codes.linear",
    "repro.codes.hsiao",
    "repro.codes.sec2bec",
    "repro.codes.genetic",
    "repro.codes.reed_solomon",
    "repro.core.layout",
    "repro.core.interleave",
    "repro.core.scheme",
    "repro.core.sanity_check",
    "repro.core.binary",
    "repro.core.rs_ssc",
    "repro.core.ssc_dsd",
    "repro.core.algebraic_schemes",
    "repro.core.duet_trio",
    "repro.core.registry",
    "repro.errormodel.patterns",
    "repro.errormodel.classify",
    "repro.errormodel.sampling",
    "repro.errormodel.montecarlo",
    "repro.errormodel.permanent",
    "repro.dram.geometry",
    "repro.dram.controller",
    "repro.dram.device",
    "repro.dram.refresh",
    "repro.beam.flux",
    "repro.beam.ancode",
    "repro.beam.displacement",
    "repro.beam.events",
    "repro.beam.microbenchmark",
    "repro.beam.campaign",
    "repro.beam.postprocess",
    "repro.hardware.gates",
    "repro.hardware.circuit",
    "repro.hardware.xor_tree",
    "repro.hardware.synth",
    "repro.system.fit",
    "repro.system.scrubbing",
    "repro.system.hpc",
    "repro.system.automotive",
    "repro.analysis.fitting",
    "repro.analysis.report",
    "repro.analysis.historical",
    "repro.analysis.tables",
    "repro.cli",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_all_resolves(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} is exported but missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 40, module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if not (callable(member) or isinstance(member, type)):
            continue  # constants and typing aliases
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports and generic aliases
        assert member.__doc__, f"{module_name}.{name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"

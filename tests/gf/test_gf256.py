"""Field-axiom and table tests for GF(2^8) over the paper's polynomial."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf.gf256 import (
    EXP_TABLE,
    GENERATOR,
    LOG_TABLE,
    ORDER,
    PRIMITIVE_POLY,
    dlog,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_pow_generator,
    is_primitive,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestPolynomial:
    def test_paper_polynomial_value(self):
        # x^8 + x^6 + x^5 + x + 1
        assert PRIMITIVE_POLY == 0b1_0110_0011

    def test_paper_polynomial_is_primitive(self):
        assert is_primitive(PRIMITIVE_POLY)

    def test_reducible_polynomial_is_not_primitive(self):
        # x^8 + 1 = (x+1)^8 over GF(2)
        assert not is_primitive(0x101)

    def test_irreducible_but_not_primitive(self):
        # x^8+x^4+x^3+x+1 (AES polynomial) is irreducible but NOT primitive.
        assert not is_primitive(0x11B)

    def test_wrong_degree(self):
        assert not is_primitive(0xB)  # degree 3


class TestTables:
    def test_exp_log_inverse(self):
        for value in range(1, 256):
            assert int(EXP_TABLE[LOG_TABLE[value]]) == value

    def test_exp_cycle(self):
        assert int(EXP_TABLE[0]) == 1
        assert int(EXP_TABLE[ORDER]) == 1  # wrapped copy

    def test_log_zero_sentinel(self):
        assert LOG_TABLE[0] == -1
        assert dlog(0) == -1

    def test_generator_log(self):
        assert dlog(GENERATOR) == 1


class TestAxioms:
    @given(elements, elements)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero, nonzero)
    def test_division(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a


class TestDivision:
    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_zero_numerator(self):
        assert gf_div(0, 17) == 0


class TestPow:
    def test_pow_zero_exponent(self):
        assert gf_pow(0x53, 0) == 1
        assert gf_pow(0, 0) == 1  # convention

    def test_pow_matches_repeated_mul(self):
        value = 1
        for exponent in range(1, 20):
            value = gf_mul(value, 0x1D)
            assert gf_pow(0x1D, exponent) == value

    def test_zero_base(self):
        assert gf_pow(0, 5) == 0

    def test_generator_order(self):
        assert gf_pow(GENERATOR, ORDER) == 1
        for exponent in range(1, ORDER):
            assert gf_pow(GENERATOR, exponent) != 1 or exponent == 0

    def test_pow_generator_negative(self):
        assert gf_mul(gf_pow_generator(-3), gf_pow_generator(3)) == 1


class TestVectorized:
    def test_mul_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 200, dtype=np.uint8)
        b = rng.integers(0, 256, 200, dtype=np.uint8)
        products = gf_mul(a, b)
        for i in range(200):
            assert int(products[i]) == gf_mul(int(a[i]), int(b[i]))

    def test_broadcasting(self):
        a = np.arange(256, dtype=np.uint8)
        doubled = gf_mul(a, np.uint8(2))
        assert doubled.shape == (256,)
        assert int(doubled[1]) == 2

    def test_div_array(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 50, dtype=np.uint8)
        b = rng.integers(1, 256, 50, dtype=np.uint8)
        assert np.array_equal(gf_mul(gf_div(a, b), b), a)

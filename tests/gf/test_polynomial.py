"""Tests for polynomials over GF(2^8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.gf256 import EXP_TABLE, gf_mul
from repro.gf.polynomial import Poly

coeff_lists = st.lists(st.integers(min_value=0, max_value=255), max_size=12)


def poly_strategy():
    return coeff_lists.map(Poly)


class TestStructure:
    def test_zero(self):
        assert Poly.zero().is_zero()
        assert Poly.zero().degree == -1

    def test_trailing_zeros_trimmed(self):
        assert Poly([1, 2, 0, 0]).degree == 1

    def test_one_and_x(self):
        assert Poly.one().degree == 0
        assert Poly.x().degree == 1
        assert Poly.x()[1] == 1

    def test_monomial(self):
        p = Poly.monomial(5, 7)
        assert p.degree == 5
        assert p[5] == 7
        assert p[4] == 0

    def test_getitem_out_of_range(self):
        assert Poly([1])[100] == 0

    def test_equality_and_hash(self):
        assert Poly([1, 2]) == Poly([1, 2, 0])
        assert hash(Poly([1, 2])) == hash(Poly([1, 2, 0]))
        assert Poly([1]) != Poly([2])

    def test_repr(self):
        assert "Poly" in repr(Poly([3, 0, 1]))
        assert repr(Poly.zero()) == "Poly(0)"


class TestRingOps:
    @given(poly_strategy(), poly_strategy())
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(poly_strategy())
    def test_addition_self_cancels(self, a):
        assert (a + a).is_zero()  # characteristic 2

    @given(poly_strategy(), poly_strategy(), poly_strategy())
    @settings(max_examples=40)
    def test_multiplication_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(poly_strategy(), poly_strategy())
    @settings(max_examples=40)
    def test_multiplication_commutative(self, a, b):
        assert a * b == b * a

    def test_degree_of_product(self):
        a, b = Poly([1, 2, 3]), Poly([5, 7])
        assert (a * b).degree == a.degree + b.degree

    def test_scale(self):
        p = Poly([1, 2, 4])
        assert p.scale(0).is_zero()
        assert p.scale(1) == p

    def test_shift(self):
        assert Poly([1, 2]).shift(2) == Poly([0, 0, 1, 2])


class TestDivision:
    @given(poly_strategy(), poly_strategy())
    @settings(max_examples=60)
    def test_divmod_invariant(self, a, b):
        if b.is_zero():
            return
        quotient, remainder = a.divmod(b)
        assert quotient * b + remainder == a
        assert remainder.degree < b.degree

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Poly([1]).divmod(Poly.zero())

    def test_mod_and_floordiv(self):
        a, b = Poly([1, 0, 0, 1]), Poly([1, 1])
        assert (a // b) * b + (a % b) == a


class TestEvaluation:
    def test_eval_constant(self):
        assert Poly([7]).eval(123) == 7

    def test_eval_batch_matches_scalar(self):
        p = Poly([3, 1, 4, 1, 5])
        points = np.arange(256, dtype=np.uint8)
        values = p.eval(points)
        for x in (0, 1, 2, 17, 255):
            assert int(values[x]) == p.eval(x)

    def test_from_roots_has_those_roots(self):
        roots = [1, 2, 37, 200]
        p = Poly.from_roots(roots)
        assert p.degree == 4
        for root in roots:
            assert p.eval(root) == 0
        assert sorted(p.roots()) == sorted(roots)

    def test_derivative_char2(self):
        # d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2
        p = Poly([9, 8, 7, 6])
        d = p.derivative()
        assert d[0] == 8
        assert d[1] == 0
        assert d[2] == 6

    def test_derivative_of_constant(self):
        assert Poly([5]).derivative().is_zero()


class TestRSGenerator:
    @pytest.mark.parametrize("num_check", [1, 2, 4, 8])
    def test_generator_degree_and_roots(self, num_check):
        g = Poly.rs_generator(num_check)
        assert g.degree == num_check
        for power in range(num_check):
            assert g.eval(int(EXP_TABLE[power])) == 0

    def test_generator_is_monic(self):
        g = Poly.rs_generator(4)
        assert g[g.degree] == 1

"""Unit and property tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf.gf2 import (
    bits_from_int,
    bytes_from_rows,
    bytes_from_words,
    gf2_inverse,
    gf2_matmul,
    gf2_mat_vec,
    gf2_rank,
    gf2_row_reduce,
    gf2_solve,
    int_from_bits,
    pack_bits,
    pack_rows,
    syndrome_byte_table,
    syndromes_batch,
    syndromes_from_bytes,
    unpack_bits,
    unpack_rows,
)


class TestBitConversions:
    def test_bits_from_int_lsb_first(self):
        bits = bits_from_int(0b1011, 6)
        assert bits.tolist() == [1, 1, 0, 1, 0, 0]

    def test_bits_from_int_msb_first(self):
        bits = bits_from_int(0b1011, 6, msb_first=True)
        assert bits.tolist() == [0, 0, 1, 0, 1, 1]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 8)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(256, 8)

    def test_zero(self):
        assert bits_from_int(0, 4).tolist() == [0, 0, 0, 0]

    @given(st.integers(min_value=0, max_value=2**60 - 1), st.booleans())
    def test_roundtrip(self, value, msb):
        bits = bits_from_int(value, 60, msb_first=msb)
        assert int_from_bits(bits, msb_first=msb) == value


class TestPacking:
    def test_pack_bits_simple(self):
        assert pack_bits(np.array([1, 0, 1], dtype=np.uint8)) == 5

    def test_pack_bits_batch(self):
        bits = np.array([[1, 0, 0], [0, 1, 1]], dtype=np.uint8)
        assert pack_bits(bits).tolist() == [1, 6]

    def test_pack_bits_width_limit(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(64, dtype=np.uint8))

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20))
    def test_pack_unpack_roundtrip(self, values):
        array = np.array(values, dtype=np.int64)
        assert np.array_equal(pack_bits(unpack_bits(array, 8)), array)


class TestMatmul:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, (5, 7), dtype=np.uint8)
        b = rng.integers(0, 2, (7, 3), dtype=np.uint8)
        naive = (a.astype(int) @ b.astype(int)) % 2
        assert np.array_equal(gf2_matmul(a, b), naive)

    def test_mat_vec(self):
        h = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        assert gf2_mat_vec(h, [1, 1, 1]).tolist() == [0, 0]

    def test_syndromes_batch_matches_single(self):
        rng = np.random.default_rng(1)
        h = rng.integers(0, 2, (8, 72), dtype=np.uint8)
        errors = rng.integers(0, 2, (50, 72), dtype=np.uint8)
        batch = syndromes_batch(h, errors)
        for row in range(50):
            assert np.array_equal(batch[row], gf2_mat_vec(h, errors[row]))

    def test_syndromes_batch_wide_input_no_overflow(self):
        # 288 columns exceeds uint8 sums; ensure accumulation is widened.
        h = np.ones((1, 288), dtype=np.uint8)
        errors = np.ones((1, 288), dtype=np.uint8)
        assert syndromes_batch(h, errors)[0, 0] == 288 % 2


class TestRowReduce:
    def test_identity_rank(self):
        assert gf2_rank(np.eye(6, dtype=np.uint8)) == 6

    def test_dependent_rows(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        assert gf2_rank(matrix) == 2  # row3 = row1 + row2

    def test_rref_pivots(self):
        matrix = np.array([[0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        rref, pivots = gf2_row_reduce(matrix)
        assert pivots == [0, 1]
        assert rref[0].tolist() == [1, 0, 1]
        assert rref[1].tolist() == [0, 1, 1]

    def test_input_not_mutated(self):
        matrix = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        copy = matrix.copy()
        gf2_row_reduce(matrix)
        assert np.array_equal(matrix, copy)


def _random_invertible(rng, size):
    while True:
        matrix = rng.integers(0, 2, (size, size), dtype=np.uint8)
        if gf2_rank(matrix) == size:
            return matrix


class TestInverse:
    def test_inverse_times_matrix_is_identity(self):
        rng = np.random.default_rng(3)
        for size in (1, 2, 4, 8, 16):
            matrix = _random_invertible(rng, size)
            product = gf2_matmul(gf2_inverse(matrix), matrix)
            assert np.array_equal(product, np.eye(size, dtype=np.uint8))

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_solve(self):
        rng = np.random.default_rng(4)
        matrix = _random_invertible(rng, 8)
        x = rng.integers(0, 2, 8, dtype=np.uint8)
        rhs = gf2_mat_vec(matrix, x)
        assert np.array_equal(gf2_solve(matrix, rhs), x)


class TestPackedRows:
    """The uint64 packed-word representation of the decode fast path."""

    @pytest.mark.parametrize("width", [1, 7, 64, 70, 288])
    def test_roundtrip(self, width):
        rng = np.random.default_rng(width)
        bits = rng.integers(0, 2, (9, width), dtype=np.uint8)
        words = pack_rows(bits)
        assert words.dtype == np.uint64
        assert words.shape == (9, -(-width // 64))
        assert np.array_equal(unpack_rows(words, width), bits)

    def test_bit_placement(self):
        bits = np.zeros((1, 288), dtype=np.uint8)
        bits[0, 0] = 1
        bits[0, 70] = 1
        bits[0, 287] = 1
        words = pack_rows(bits)
        assert words[0, 0] == np.uint64(1)
        assert words[0, 1] == np.uint64(1) << np.uint64(6)  # bit 70 = word 1 bit 6
        assert words[0, 4] == np.uint64(1) << np.uint64(31)  # bit 287

    def test_bytes_from_words_matches_bytes_from_rows(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, (5, 288), dtype=np.uint8)
        assert np.array_equal(
            bytes_from_words(pack_rows(bits), 36), bytes_from_rows(bits)
        )


class TestSyndromeByteTable:
    @pytest.mark.parametrize("shape", [(8, 72), (9, 72), (32, 288), (5, 13)])
    def test_matches_matmul_syndromes(self, shape):
        rng = np.random.default_rng(shape[1])
        h = rng.integers(0, 2, shape, dtype=np.uint8)
        errors = rng.integers(0, 2, (40, shape[1]), dtype=np.uint8)
        table = syndrome_byte_table(h)
        assert table.shape == (-(-shape[1] // 8), 256)
        got = syndromes_from_bytes(table, bytes_from_rows(errors))
        assert np.array_equal(got, pack_bits(syndromes_batch(h, errors)))

    def test_zero_error_zero_syndrome(self):
        h = np.random.default_rng(0).integers(0, 2, (8, 72), dtype=np.uint8)
        table = syndrome_byte_table(h)
        zero = np.zeros((1, 72), dtype=np.uint8)
        assert syndromes_from_bytes(table, bytes_from_rows(zero))[0] == 0

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            syndrome_byte_table(np.zeros((63, 100), dtype=np.uint8))


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=2**31))
def test_pack_is_int_from_bits(value):
    bits = bits_from_int(value, 32)
    assert int(pack_bits(bits)) == int_from_bits(bits)

"""Scalar-decode vs batch-decode label equivalence across the registry.

Every scheme is linear, so decoding an error pattern over the zero codeword
through the scalar reference decoder yields the same DUE/SDC/DCE label the
vectorized batch decoder assigns.  This is the oracle that makes the packed
syndrome-LUT fast path safe: the scalar decoder never changed, the batch
decoder did.
"""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.layout import ENTRY_BITS
from repro.core.registry import (
    EXPANSION_SCHEME_NAMES,
    EXTENSION_SCHEME_NAMES,
    SCHEME_NAMES,
)
from repro.errormodel.sampling import (
    enumerate_pin_errors,
    sample_beat_errors,
)

EVERY_SCHEME = SCHEME_NAMES + EXTENSION_SCHEME_NAMES + EXPANSION_SCHEME_NAMES


def _mixed_error_batch(seed):
    """A few hundred patterns spanning the easy-to-hard spectrum."""
    rng = np.random.default_rng(seed)
    sparse = (rng.random((120, ENTRY_BITS)) < 0.01).astype(np.uint8)
    dense = (rng.random((60, ENTRY_BITS)) < 0.15).astype(np.uint8)
    pins = enumerate_pin_errors()[rng.integers(0, 792, size=60)]
    beats = sample_beat_errors(60, rng)
    errors = np.concatenate([sparse, dense, pins, beats], axis=0)
    return errors[errors.any(axis=1)]


def _scalar_labels(scheme, errors):
    """(due, sdc) label arrays from the scalar decoder over the zero codeword."""
    due = np.zeros(errors.shape[0], dtype=bool)
    sdc = np.zeros(errors.shape[0], dtype=bool)
    for row in range(errors.shape[0]):
        result = scheme.decode(errors[row])
        if result.status is DecodeStatus.DETECTED:
            due[row] = True
        else:
            sdc[row] = bool(result.data.any())
    return due, sdc


@pytest.mark.parametrize("name", EVERY_SCHEME)
def test_scalar_and_batch_labels_identical(name):
    scheme = get_scheme(name)
    errors = _mixed_error_batch(seed=97)
    batch = scheme.decode_batch_errors(errors)
    due, sdc = _scalar_labels(scheme, errors)

    assert np.array_equal(batch.due, due), name
    assert np.array_equal(batch.sdc(), sdc), name
    assert np.array_equal(batch.dce(), ~due & ~sdc), name

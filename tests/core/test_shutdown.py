"""Process-exit cleanup: shutdown hooks, arena release, worker signal reset."""

import signal as signal_module

import pytest

from repro.core import pool as pool_module
from repro.core import shm as shm_module
from repro.core.pool import (
    install_shutdown_hooks,
    pool_worker_init,
    release_runtime_resources,
)
from repro.core.shm import ShmArena, release_arenas


@pytest.fixture
def hook_state(monkeypatch):
    """Fresh hook-installation state with signal/atexit stubbed out."""
    installed = {}
    registered = []
    monkeypatch.setattr(pool_module, "_HOOKS_INSTALLED", False)
    monkeypatch.setattr(pool_module, "_PREVIOUS_HANDLERS", {})
    monkeypatch.setattr(
        pool_module.signal, "signal",
        lambda signum, handler: installed.setdefault(signum, handler))
    monkeypatch.setattr(pool_module.atexit, "register", registered.append)
    return installed, registered


class TestInstallShutdownHooks:
    def test_installs_once(self, hook_state):
        installed, registered = hook_state
        assert install_shutdown_hooks() is True
        assert install_shutdown_hooks() is False  # idempotent
        assert registered == [release_runtime_resources]
        assert set(installed) == {signal_module.SIGTERM,
                                  signal_module.SIGINT}

    def test_handlers_installed_from_main_thread_only(self, hook_state,
                                                      monkeypatch):
        installed, registered = hook_state
        monkeypatch.setattr(
            pool_module.threading, "current_thread", lambda: object())
        assert install_shutdown_hooks() is True
        assert installed == {}  # no signal work off the main thread
        assert registered  # but atexit still covers normal exits


class TestSignalChaining:
    def test_callable_previous_handler_is_chained(self, monkeypatch):
        calls = []
        monkeypatch.setattr(pool_module, "_PREVIOUS_HANDLERS",
                            {signal_module.SIGTERM:
                             lambda s, f: calls.append(s)})
        released = []
        monkeypatch.setattr(pool_module, "release_runtime_resources",
                            lambda: released.append(True))
        pool_module._on_shutdown_signal(signal_module.SIGTERM, None)
        assert released and calls == [signal_module.SIGTERM]

    def test_default_disposition_rekills(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_PREVIOUS_HANDLERS",
                            {signal_module.SIGTERM: signal_module.SIG_DFL})
        monkeypatch.setattr(pool_module, "release_runtime_resources",
                            lambda: None)
        resets, kills = [], []
        monkeypatch.setattr(pool_module.signal, "signal",
                            lambda s, h: resets.append((s, h)))
        monkeypatch.setattr(pool_module.os, "kill",
                            lambda pid, s: kills.append((pid, s)))
        pool_module._on_shutdown_signal(signal_module.SIGTERM, None)
        assert resets == [(signal_module.SIGTERM, signal_module.SIG_DFL)]
        assert kills and kills[0][1] == signal_module.SIGTERM

    def test_sig_ign_swallows(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_PREVIOUS_HANDLERS",
                            {signal_module.SIGINT: signal_module.SIG_IGN})
        monkeypatch.setattr(pool_module, "release_runtime_resources",
                            lambda: None)
        kills = []
        monkeypatch.setattr(pool_module.os, "kill",
                            lambda pid, s: kills.append(s))
        pool_module._on_shutdown_signal(signal_module.SIGINT, None)
        assert kills == []


class TestArenaRelease:
    def test_release_arenas_unlinks_live_segments(self):
        arena = ShmArena(1024)
        name = arena.name
        assert name in release_arenas()
        assert arena._segment is None
        assert name not in release_arenas()  # idempotent

    def test_release_skips_already_closed(self):
        arena = ShmArena(1024)
        arena.close()
        assert arena.name not in release_arenas()

    def test_release_runtime_resources_covers_pools_and_arenas(self,
                                                               monkeypatch):
        closed = []
        monkeypatch.setattr(pool_module, "close_warm_pools",
                            lambda: closed.append("pools"))
        arena = ShmArena(512)
        release_runtime_resources()
        assert closed == ["pools"]
        assert arena._segment is None


class TestPoolWorkerInit:
    def test_resets_wakeup_fd_and_dispositions(self, monkeypatch):
        wakeups, dispositions = [], []
        monkeypatch.setattr(pool_module.signal, "set_wakeup_fd",
                            wakeups.append)
        monkeypatch.setattr(pool_module.signal, "signal",
                            lambda s, h: dispositions.append((s, h)))
        pool_worker_init()
        assert wakeups == [-1]
        assert dispositions == [
            (signal_module.SIGTERM, signal_module.SIG_DFL),
            (signal_module.SIGINT, signal_module.SIG_DFL),
        ]

    def test_survives_restricted_environments(self, monkeypatch):
        def boom(*args):
            raise ValueError("not in main thread")

        monkeypatch.setattr(pool_module.signal, "set_wakeup_fd", boom)
        monkeypatch.setattr(pool_module.signal, "signal", boom)
        pool_worker_init()  # must not raise

"""The expansion-tier schemes and the registry's alias discipline."""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.layout import DATA_BITS, ENTRY_BITS
from repro.core.registry import (
    EXPANSION_SCHEME_NAMES,
    SCHEME_ALIASES,
    known_scheme_names,
)
from repro.errormodel.sampling import enumerate_pin_errors


class TestAliases:
    def test_every_alias_resolves_to_the_canonical_instance(self):
        for alias, canonical in SCHEME_ALIASES.items():
            assert get_scheme(alias) is get_scheme(canonical), alias

    def test_case_is_normalized_outside_the_cache(self):
        for name in known_scheme_names():
            assert get_scheme(name.upper()) is get_scheme(name)
        assert get_scheme("TrioECC") is get_scheme("trio")

    def test_unknown_name_raises_with_the_roster(self):
        with pytest.raises(KeyError) as excinfo:
            get_scheme("no-such-code")
        message = str(excinfo.value)
        assert "trio" in message
        assert "aliases" in message


class TestRoundTrips:
    @pytest.mark.parametrize("name", EXPANSION_SCHEME_NAMES)
    def test_clean_entry_round_trips(self, name):
        scheme = get_scheme(name)
        rng = np.random.default_rng(7)
        data = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
        result = scheme.decode(scheme.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)

    @pytest.mark.parametrize("name", EXPANSION_SCHEME_NAMES)
    def test_single_bit_errors_never_sdc(self, name):
        scheme = get_scheme(name)
        rng = np.random.default_rng(8)
        data = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
        entry = scheme.encode(data)
        for position in range(0, ENTRY_BITS, 7):
            flipped = entry.copy()
            flipped[position] ^= 1
            result = scheme.decode(flipped)
            if result.status is DecodeStatus.DETECTED:
                continue  # polar may defer some singles to the CRC
            assert result.status is DecodeStatus.CORRECTED
            assert np.array_equal(result.data, data), position


class TestSecDaec:
    def test_adjacent_double_corrected(self):
        scheme = get_scheme("sec-daec")
        rng = np.random.default_rng(9)
        data = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
        entry = scheme.encode(data)
        for low in (5, 40, 70, 100, 200):  # within-codeword adjacencies
            flipped = entry.copy()
            flipped[low] ^= 1
            flipped[low + 1] ^= 1
            result = scheme.decode(flipped)
            assert result.status is DecodeStatus.CORRECTED, low
            assert np.array_equal(result.data, data), low

    def test_nonadjacent_double_is_not_silently_clean(self):
        scheme = get_scheme("sec-daec")
        data = np.zeros(DATA_BITS, dtype=np.uint8)
        flipped = scheme.encode(data)
        flipped[3] ^= 1
        flipped[39] ^= 1
        result = scheme.decode(flipped)
        assert result.status is not DecodeStatus.CLEAN


class TestBchDec:
    def test_arbitrary_double_in_one_codeword_corrected(self):
        scheme = get_scheme("bch-dec")
        rng = np.random.default_rng(10)
        data = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
        entry = scheme.encode(data)
        for low, high in ((0, 143), (3, 77), (150, 287), (10, 11)):
            flipped = entry.copy()
            flipped[low] ^= 1
            flipped[high] ^= 1
            result = scheme.decode(flipped)
            assert result.status is DecodeStatus.CORRECTED, (low, high)
            assert np.array_equal(result.data, data), (low, high)

    def test_pin_error_corrected(self):
        # A pin error lands two bits in each 144-bit codeword — inside DEC.
        scheme = get_scheme("bch-dec")
        assert scheme.corrects_pins
        batch = scheme.decode_batch_errors(enumerate_pin_errors())
        assert batch.dce().all()

    def test_triple_in_one_codeword_is_not_corrected_to_truth(self):
        scheme = get_scheme("bch-dec")
        data = np.zeros(DATA_BITS, dtype=np.uint8)
        flipped = scheme.encode(data)
        for position in (1, 60, 120):
            flipped[position] ^= 1
        result = scheme.decode(flipped)
        assert result.status is not DecodeStatus.CLEAN
        if result.status is DecodeStatus.CORRECTED:
            assert not np.array_equal(result.data, data)  # honest SDC


class TestPolarScheme:
    def test_does_not_claim_pin_correction(self):
        assert not get_scheme("polar").corrects_pins

    def test_cache_token_is_content_addressed(self):
        token = get_scheme("polar").cache_token()
        assert token != "polar"
        assert len(token) == 64


class TestCacheTokens:
    def test_tokens_distinct_across_the_registry(self):
        tokens = [get_scheme(name).cache_token()
                  for name in known_scheme_names()]
        assert len(set(tokens)) == len(tokens)

    def test_hsiao_v2_is_a_different_code_than_the_baseline(self):
        baseline = get_scheme("ni-secded")
        searched = get_scheme("hsiao-v2")
        assert not np.array_equal(baseline.code.h, searched.code.h)
        assert baseline.cache_token() != searched.cache_token()

"""Tests for the reconfigurable DuetECC/TrioECC decoder (Section 6.3)."""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.duet_trio import ReconfigurableDuetTrio
from repro.core.layout import bits_of_byte


@pytest.fixture(scope="module")
def decoder():
    return ReconfigurableDuetTrio()


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).integers(0, 2, 256, dtype=np.uint8)


class TestModeSwitch:
    def test_default_mode(self, decoder):
        assert decoder.mode == "trio"

    def test_invalid_mode_rejected(self, decoder):
        with pytest.raises(ValueError):
            decoder.mode = "quartet"

    def test_name_tracks_mode(self):
        decoder = ReconfigurableDuetTrio("duet")
        assert "duet" in decoder.name
        decoder.mode = "trio"
        assert "trio" in decoder.name

    def test_encoding_is_mode_independent(self, decoder, data):
        decoder.mode = "duet"
        duet_entry = decoder.encode(data)
        decoder.mode = "trio"
        trio_entry = decoder.encode(data)
        assert np.array_equal(duet_entry, trio_entry)


class TestBehaviourPerMode:
    def test_byte_error_detected_in_duet_corrected_in_trio(self, decoder, data):
        entry = decoder.encode(data)
        received = entry.copy()
        for position in bits_of_byte(4):
            received[int(position)] ^= 1

        decoder.mode = "duet"
        assert decoder.decode(received).status is DecodeStatus.DETECTED

        decoder.mode = "trio"
        result = decoder.decode(received)
        assert result.status is DecodeStatus.CORRECTED
        assert np.array_equal(result.data, data)

    def test_single_bit_corrected_in_both_modes(self, decoder, data):
        entry = decoder.encode(data)
        received = entry.copy()
        received[100] ^= 1
        for mode in ("duet", "trio"):
            decoder.mode = mode
            result = decoder.decode(received)
            assert result.status is DecodeStatus.CORRECTED
            assert np.array_equal(result.data, data)

    def test_batch_decoding_follows_mode(self, decoder):
        errors = np.zeros((1, 288), dtype=np.uint8)
        errors[0, bits_of_byte(9)] = 1
        decoder.mode = "duet"
        assert bool(decoder.decode_batch_errors(errors).due[0])
        decoder.mode = "trio"
        batch = decoder.decode_batch_errors(errors)
        assert not bool(batch.due[0])
        assert bool(batch.corrected[0])


class TestAgainstRegistrySchemes:
    """The reconfigurable decoder's trio mode must match the registry's
    TrioECC exactly — it is the same code and decode policy."""

    def test_trio_mode_matches_trio_scheme(self, decoder):
        trio = get_scheme("trio")
        decoder.mode = "trio"
        rng = np.random.default_rng(1)
        errors = (rng.random((200, 288)) < 0.02).astype(np.uint8)
        ours = decoder.decode_batch_errors(errors)
        theirs = trio.decode_batch_errors(errors)
        assert np.array_equal(ours.due, theirs.due)
        assert np.array_equal(ours.residual_data, theirs.residual_data)

    def test_duet_mode_detects_everything_registry_duet_detects_on_bytes(
        self, decoder, data
    ):
        # Registry DuetECC uses the Hsiao H; the reconfigurable decoder uses
        # the Equation-3 H in SEC-DED mode.  Both guarantee byte detection.
        decoder.mode = "duet"
        entry = decoder.encode(data)
        for byte in range(0, 36, 3):
            received = entry.copy()
            for position in bits_of_byte(byte):
                received[int(position)] ^= 1
            result = decoder.decode(received)
            assert result.status is DecodeStatus.DETECTED, byte

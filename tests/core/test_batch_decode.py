"""Tests for the BatchDecode container and chunked decoding plumbing."""

import numpy as np
import pytest

from repro.core import BatchDecode, get_scheme
from repro.core.layout import ENTRY_BITS
from repro.errormodel.montecarlo import _decode_chunked


class TestBatchDecodeContainer:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchDecode(
                due=np.zeros(3, dtype=bool),
                residual_data=np.zeros(4, dtype=bool),
                corrected=np.zeros(3, dtype=bool),
            )

    def test_outcome_accessors(self):
        batch = BatchDecode(
            due=np.array([True, False, False, False]),
            residual_data=np.array([True, True, False, False]),
            corrected=np.array([False, False, True, False]),
        )
        assert batch.size == 4
        # DUE wins over residual data; residual without DUE is SDC.
        assert batch.sdc().tolist() == [False, True, False, False]
        assert batch.dce().tolist() == [False, False, True, True]

    def test_partition_property(self):
        rng = np.random.default_rng(0)
        due = rng.random(50) < 0.3
        residual = rng.random(50) < 0.3
        batch = BatchDecode(due=due, residual_data=residual,
                            corrected=np.zeros(50, dtype=bool))
        combined = batch.dce() | batch.sdc() | batch.due
        assert combined.all()


class TestChunkedDecoding:
    def test_chunking_is_transparent(self):
        """Counts must not depend on the chunk size."""
        scheme = get_scheme("duet")
        rng = np.random.default_rng(1)
        errors = (rng.random((1000, ENTRY_BITS)) < 0.02).astype(np.uint8)
        errors = errors[errors.any(axis=1)]

        whole = _decode_chunked(scheme, errors, chunk=10_000)
        tiny = _decode_chunked(scheme, errors, chunk=7)
        assert whole == tiny

    def test_counts_partition_batch(self):
        scheme = get_scheme("trio")
        rng = np.random.default_rng(2)
        errors = (rng.random((500, ENTRY_BITS)) < 0.05).astype(np.uint8)
        errors = errors[errors.any(axis=1)]
        dce, due, sdc = _decode_chunked(scheme, errors)
        assert dce + due + sdc == errors.shape[0]

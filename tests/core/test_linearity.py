"""Linearity properties underpinning the Monte Carlo methodology.

The batch evaluator injects error patterns over the *all-zero* codeword and
trusts that outcomes are codeword-independent.  That holds because every
scheme is built from linear codes; these tests verify it empirically for
each organization — if a future scheme broke linearity, the Table 2 /
Figure 8 numbers would silently stop meaning what they claim.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SCHEME_NAMES, DecodeStatus, get_scheme
from repro.core.layout import DATA_BITS, ENTRY_BITS
from repro.core.registry import EXPANSION_SCHEME_NAMES, EXTENSION_SCHEME_NAMES

ALL = (list(SCHEME_NAMES) + list(EXTENSION_SCHEME_NAMES)
       + list(EXPANSION_SCHEME_NAMES))


def _classify(scheme, entry, data):
    result = scheme.decode(entry)
    if result.status is DecodeStatus.DETECTED:
        return "DUE"
    return "DCE" if np.array_equal(result.data, data) else "SDC"


@pytest.mark.parametrize("name", ALL)
def test_encoder_linearity(name):
    scheme = get_scheme(name)
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
    b = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
    assert np.array_equal(
        scheme.encode(a) ^ scheme.encode(b), scheme.encode(a ^ b)
    )


@pytest.mark.parametrize("name", ALL)
def test_outcome_is_codeword_independent(name):
    """The same error pattern yields the same outcome over any codeword."""
    scheme = get_scheme(name)
    rng = np.random.default_rng(1)
    datasets = [
        np.zeros(DATA_BITS, dtype=np.uint8),
        np.ones(DATA_BITS, dtype=np.uint8),
        rng.integers(0, 2, DATA_BITS, dtype=np.uint8),
    ]
    for _ in range(40):
        error = (rng.random(ENTRY_BITS) < 0.02).astype(np.uint8)
        if not error.any():
            continue
        outcomes = {
            _classify(scheme, scheme.encode(data) ^ error, data)
            for data in datasets
        }
        assert len(outcomes) == 1, (name, np.nonzero(error)[0])


@pytest.mark.parametrize("name", ALL)
def test_corrected_bits_are_codeword_independent(name):
    scheme = get_scheme(name)
    rng = np.random.default_rng(2)
    data_a = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
    data_b = rng.integers(0, 2, DATA_BITS, dtype=np.uint8)
    for position in rng.choice(ENTRY_BITS, size=10, replace=False):
        error = np.zeros(ENTRY_BITS, dtype=np.uint8)
        error[position] = 1
        result_a = scheme.decode(scheme.encode(data_a) ^ error)
        result_b = scheme.decode(scheme.encode(data_b) ^ error)
        assert result_a.corrected_bits == result_b.corrected_bits


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(ALL),
    st.lists(st.integers(min_value=0, max_value=ENTRY_BITS - 1),
             min_size=1, max_size=6, unique=True),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_batch_matches_scalar_over_random_codewords(
    name, positions, seed
):
    """End-to-end property: batch-over-zero == scalar-over-random-codeword."""
    scheme = get_scheme(name)
    error = np.zeros(ENTRY_BITS, dtype=np.uint8)
    error[positions] = 1
    batch = scheme.decode_batch_errors(error[None, :])

    data = np.random.default_rng(seed).integers(0, 2, DATA_BITS, dtype=np.uint8)
    outcome = _classify(scheme, scheme.encode(data) ^ error, data)
    if outcome == "DUE":
        assert bool(batch.due[0])
    elif outcome == "SDC":
        assert bool(batch.sdc()[0])
    else:
        assert bool(batch.dce()[0])

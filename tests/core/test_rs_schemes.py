"""Coverage guarantees of the symbol-based organizations (Section 6.2)."""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.layout import bits_of_byte, bits_of_pin
from repro.core.rs_ssc import _build_layout


def _outcome(scheme, entry, data, positions):
    received = entry.copy()
    for position in positions:
        received[position] ^= 1
    result = scheme.decode(received)
    if result.status is DecodeStatus.DETECTED:
        return "DUE"
    return "DCE" if np.array_equal(result.data, data) else "SDC"


@pytest.fixture(scope="module")
def prepared():
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 256, dtype=np.uint8)
    return data


class TestSymbolLayout:
    def test_checkerboard_partition(self):
        layout = _build_layout()
        seen = sorted(int(b) for cw in layout for sym in cw for b in sym)
        assert seen == list(range(288))

    def test_byte_error_straddles_codewords(self):
        layout = _build_layout()
        position_to_codeword = {}
        for cw in range(2):
            for sym in range(18):
                for bit in layout[cw, sym]:
                    position_to_codeword[int(bit)] = cw
        for byte in range(36):
            codewords = {position_to_codeword[int(b)] for b in bits_of_byte(byte)}
            assert codewords == {0, 1}, byte

    def test_pin_error_straddles_codewords(self):
        layout = _build_layout()
        position_to_codeword = {}
        for cw in range(2):
            for sym in range(18):
                for bit in layout[cw, sym]:
                    position_to_codeword[int(bit)] = cw
        for pin in range(72):
            codewords = {position_to_codeword[int(b)] for b in bits_of_pin(pin)}
            assert codewords == {0, 1}, pin

    def test_symbol_is_4pin_2beat(self):
        layout = _build_layout()
        for cw in range(2):
            for sym in range(18):
                bits = layout[cw, sym]
                pins = {int(b) % 72 for b in bits}
                beats = {int(b) // 72 for b in bits}
                assert len(pins) == 4
                assert len(beats) == 2


@pytest.mark.parametrize("name", ["i-ssc", "i-ssc-csc"])
class TestInterleavedSSC:
    def test_all_byte_errors_corrected(self, name, prepared):
        scheme = get_scheme(name)
        entry = scheme.encode(prepared)
        for byte in range(0, 36, 5):
            positions = [int(b) for b in bits_of_byte(byte)]
            assert _outcome(scheme, entry, prepared, positions) == "DCE", byte

    def test_all_pin_errors_corrected(self, name, prepared):
        scheme = get_scheme(name)
        entry = scheme.encode(prepared)
        for pin in range(0, 72, 7):
            positions = [int(b) for b in bits_of_pin(pin)]
            assert _outcome(scheme, entry, prepared, positions) == "DCE", pin

    def test_partial_byte_errors_corrected(self, name, prepared):
        scheme = get_scheme(name)
        entry = scheme.encode(prepared)
        bits = bits_of_byte(11)
        for mask in (0b11, 0b1010, 0b1111111):
            positions = [int(bits[b]) for b in range(8) if (mask >> b) & 1]
            assert _outcome(scheme, entry, prepared, positions) == "DCE"


class TestSSCvsCSC:
    def test_csc_reduces_sdc_on_beat_errors(self, prepared):
        plain = get_scheme("i-ssc")
        checked = get_scheme("i-ssc-csc")
        rng = np.random.default_rng(1)
        from repro.errormodel.sampling import sample_beat_errors

        errors = sample_beat_errors(3000, rng)
        plain_sdc = int(plain.decode_batch_errors(errors).sdc().sum())
        checked_sdc = int(checked.decode_batch_errors(errors).sdc().sum())
        assert checked_sdc <= plain_sdc


class TestSSCDSDPlus:
    def test_all_byte_errors_corrected(self, prepared):
        scheme = get_scheme("ssc-dsd+")
        entry = scheme.encode(prepared)
        for byte in range(36):
            positions = [int(b) for b in bits_of_byte(byte)]
            assert _outcome(scheme, entry, prepared, positions) == "DCE", byte

    def test_pin_errors_detected_not_corrected(self, prepared):
        scheme = get_scheme("ssc-dsd+")
        entry = scheme.encode(prepared)
        for pin in range(0, 72, 5):
            positions = [int(b) for b in bits_of_pin(pin)]
            assert _outcome(scheme, entry, prepared, positions) == "DUE", pin

    def test_double_byte_errors_detected(self, prepared):
        scheme = get_scheme("ssc-dsd+")
        entry = scheme.encode(prepared)
        rng = np.random.default_rng(2)
        for _ in range(100):
            first, second = rng.choice(36, size=2, replace=False)
            positions = [int(b) for b in bits_of_byte(int(first))]
            positions += [int(bits_of_byte(int(second))[rng.integers(8)])]
            assert _outcome(scheme, entry, prepared, positions) == "DUE"

    def test_lowest_entry_error_sdc(self, prepared):
        from repro.errormodel.sampling import sample_entry_errors

        rng = np.random.default_rng(3)
        errors = sample_entry_errors(5000, rng)
        dsd = get_scheme("ssc-dsd+").decode_batch_errors(errors)
        trio = get_scheme("trio").decode_batch_errors(errors)
        assert int(dsd.sdc().sum()) <= int(trio.sdc().sum())

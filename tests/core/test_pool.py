"""The shared requeue-then-serial pool degradation helper.

Exercises :func:`repro.core.pool.run_with_requeue` directly with scripted
fake pools, pinning down the accounting reconciliation: a job that fails
any number of pool attempts is *requeued exactly once*, while raw timeout
and pool-break incidents are tallied per occurrence.
"""

import logging

import pytest

from repro.core.pool import BrokenExecutor, PoolReport, run_with_requeue
from repro.core.pool import _FuturesTimeout

JOBS = ["a", "b", "c"]


class _Future:
    def __init__(self, outcome):
        self.outcome = outcome
        self.cancelled = False

    def result(self, timeout=None):
        if isinstance(self.outcome, BaseException):
            raise self.outcome
        return self.outcome

    def cancel(self):
        self.cancelled = True


class _ScriptedPool:
    """Executor stand-in driven by a per-attempt outcome function."""

    def __init__(self, outcome_for):
        self.outcome_for = outcome_for
        self.shutdowns = []

    def submit(self, fn, job):
        return _Future(self.outcome_for(job))

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns.append((wait, cancel_futures))


def _run(factory, jobs=JOBS, on_result=None, timeout=None, workers=4):
    return run_with_requeue(
        jobs,
        key=lambda job: job,
        describe=lambda job: f"job {job}",
        submit=lambda pool, job: pool.submit(None, job),
        run_serial=lambda job: f"serial:{job}",
        workers=workers,
        timeout=timeout,
        executor_factory=factory,
        noun="jobs",
        on_result=on_result,
    )


class TestHappyPath:
    def test_all_jobs_complete_on_the_pool(self):
        pools = []

        def factory():
            pools.append(_ScriptedPool(lambda job: f"pool:{job}"))
            return pools[-1]

        results, report = _run(factory)
        assert results == {job: f"pool:{job}" for job in JOBS}
        assert len(pools) == 1
        assert (report.attempts, report.pool_completed,
                report.serial_completed) == (1, 3, 0)
        assert report.requeued == 0
        assert report.counters()["pool_requeued"] == 0

    def test_pool_skipped_for_serial_configurations(self):
        for workers, jobs in ((None, JOBS), (1, JOBS), (4, ["only"])):
            results, report = _run(
                lambda: pytest.fail("factory must not be called"),
                jobs=jobs, workers=workers)
            assert results == {job: f"serial:{job}" for job in jobs}
            assert report.attempts == 0
            assert report.counters() == {}  # serial runs stay clean


class TestRequeueAccounting:
    def test_job_failing_both_attempts_is_requeued_exactly_once(self):
        def factory():
            return _ScriptedPool(
                lambda job: _FuturesTimeout() if job == "b" else f"pool:{job}")

        results, report = _run(factory, timeout=0.01)
        assert results["b"] == "serial:b"
        assert report.requeued_keys == {"b"}
        assert report.requeued == 1          # one requeued job...
        assert report.timeouts == 2          # ...two timeout incidents
        assert report.attempts == 2
        counters = report.counters()
        assert counters["pool_requeued"] == 1
        assert counters["pool_timeouts"] == 2
        assert counters["pool_serial_fallback"] == 1

    def test_job_that_recovers_on_the_second_attempt(self):
        attempts = []

        def factory():
            attempts.append(len(attempts))
            current = len(attempts)
            return _ScriptedPool(
                lambda job: _FuturesTimeout()
                if (job == "b" and current == 1) else f"pool:{job}")

        results, report = _run(factory, timeout=0.01)
        assert results["b"] == "pool:b"
        assert report.requeued_keys == {"b"}
        assert (report.timeouts, report.serial_completed) == (1, 0)

    def test_broken_pool_requeues_everything_unfinished(self, caplog):
        def factory():
            return _ScriptedPool(lambda job: BrokenExecutor("dead"))

        with caplog.at_level(logging.WARNING, logger="repro.core.pool"):
            results, report = _run(factory)
        assert results == {job: f"serial:{job}" for job in JOBS}
        assert report.requeued_keys == set(JOBS)
        assert report.pool_breaks == 2  # one break observed per attempt
        assert report.serial_completed == 3
        assert any("worker pool broke" in r.message for r in caplog.records)
        assert any("falling back" in r.message for r in caplog.records)

    def test_serial_retry_after_timeout_is_one_incident(self):
        """A chunk that times out on every pool attempt and then succeeds
        in-process must advance its heartbeat once and be requeued once —
        the timeout *occurrences* stay per-incident, but nothing else
        double-counts the job."""
        advances = []

        def factory():
            return _ScriptedPool(
                lambda job: _FuturesTimeout() if job == "b" else f"pool:{job}")

        results, report = _run(
            factory, timeout=0.01,
            on_result=lambda job, result: advances.append(job))
        assert results["b"] == "serial:b"
        assert advances.count("b") == 1     # heartbeat fired once for b
        assert sorted(advances) == JOBS     # and once for everything else
        assert report.requeued == 1
        assert report.timeouts == 2         # raw incidents, per occurrence
        assert report.serial_completed == 1
        assert report.pool_completed == 2
        # the reconciliation: completions sum to the job count exactly
        assert report.pool_completed + report.serial_completed == len(JOBS)

    def test_submit_time_pool_break_requeues_once(self, caplog):
        """A pool whose workers die between creation and the first submit
        breaks at submit time — one break incident per attempt, the same
        requeue accounting as a break observed through a future."""
        class _SubmitBrokenPool(_ScriptedPool):
            def submit(self, fn, job):
                raise BrokenExecutor("died before first submit")

        def factory():
            return _SubmitBrokenPool(lambda job: None)

        with caplog.at_level(logging.WARNING, logger="repro.core.pool"):
            results, report = _run(factory)
        assert results == {job: f"serial:{job}" for job in JOBS}
        assert report.pool_breaks == 2      # one per pool attempt
        assert report.requeued_keys == set(JOBS)
        assert report.serial_completed == 3
        assert any("broke during submission" in r.message
                   for r in caplog.records)

    def test_pool_that_cannot_start_goes_straight_to_serial(self, caplog):
        def factory():
            raise OSError("no processes")

        with caplog.at_level(logging.WARNING, logger="repro.core.pool"):
            results, report = _run(factory)
        assert results == {job: f"serial:{job}" for job in JOBS}
        assert (report.attempts, report.pool_start_failures) == (0, 1)
        assert report.counters()["pool_serial_fallback"] == 3
        assert any("cannot start worker pool" in r.message
                   for r in caplog.records)


class TestHooks:
    def test_on_result_fires_once_per_job_on_either_path(self):
        seen = []

        def factory():
            return _ScriptedPool(
                lambda job: _FuturesTimeout() if job == "b" else f"pool:{job}")

        _run(factory, timeout=0.01,
             on_result=lambda job, result: seen.append((job, result)))
        assert sorted(seen) == [("a", "pool:a"), ("b", "serial:b"),
                                ("c", "pool:c")]

    def test_pools_are_always_shut_down(self):
        pools = []

        def factory():
            pools.append(_ScriptedPool(lambda job: BrokenExecutor("dead")))
            return pools[-1]

        _run(factory)
        assert len(pools) == 2
        assert all(p.shutdowns == [(False, True)] for p in pools)

    def test_custom_logger_is_used(self, caplog):
        logger = logging.getLogger("test.pool.custom")

        def factory():
            raise OSError("nope")

        with caplog.at_level(logging.WARNING, logger="test.pool.custom"):
            run_with_requeue(
                JOBS, key=lambda j: j, describe=lambda j: j,
                submit=lambda pool, j: None,
                run_serial=lambda j: j, workers=4,
                executor_factory=factory, logger=logger,
            )
        assert caplog.records
        assert all(r.name == "test.pool.custom" for r in caplog.records)


class TestPoolReport:
    def test_counters_shape(self):
        report = PoolReport(jobs=5, attempts=2, pool_completed=3,
                            serial_completed=2, timeouts=3, pool_breaks=1,
                            requeued_keys={1, 2})
        assert report.counters() == {
            "pool_jobs": 5,
            "pool_attempts": 2,
            "pool_completed": 3,
            "pool_serial_fallback": 2,
            "pool_requeued": 2,
            "pool_timeouts": 3,
            "pool_breaks": 1,
        }

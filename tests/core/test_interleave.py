"""Tests for logical codeword interleaving (Equations 1 and 2)."""

import numpy as np
import pytest

from repro.core.interleave import (
    INTERLEAVE_STEP,
    deinterleave,
    deinterleave_permutation,
    interleave,
    interleave_permutation,
)
from repro.core.layout import ENTRY_BITS, NUM_PINS


class TestPermutations:
    def test_step_is_coprime(self):
        import math

        assert math.gcd(INTERLEAVE_STEP, ENTRY_BITS) == 1

    def test_equation_1(self):
        perm = interleave_permutation()
        for i in (0, 1, 7, 100, 287):
            assert perm[i] == (i * 73) % 288

    def test_permutations_are_bijections(self):
        assert sorted(interleave_permutation().tolist()) == list(range(ENTRY_BITS))
        assert sorted(deinterleave_permutation().tolist()) == list(range(ENTRY_BITS))

    def test_mutually_inverse(self):
        forward = interleave_permutation()
        backward = deinterleave_permutation()
        assert np.array_equal(forward[backward], np.arange(ENTRY_BITS))


class TestSwizzle:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, ENTRY_BITS, dtype=np.uint8)
        assert np.array_equal(deinterleave(interleave(bits)), bits)
        assert np.array_equal(interleave(deinterleave(bits)), bits)

    def test_batch_roundtrip(self):
        rng = np.random.default_rng(1)
        batch = rng.integers(0, 2, (10, ENTRY_BITS), dtype=np.uint8)
        assert np.array_equal(deinterleave(interleave(batch)), batch)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(100, dtype=np.uint8))
        with pytest.raises(ValueError):
            deinterleave(np.zeros(100, dtype=np.uint8))


class TestStructuralProperties:
    """The two properties the paper's ECC organizations rely on."""

    def test_pin_error_hits_each_codeword_once_at_same_offset(self):
        perm = interleave_permutation()
        for pin in range(NUM_PINS):
            ni_positions = [int(perm[pin + 72 * beat]) for beat in range(4)]
            codewords = sorted(p // 72 for p in ni_positions)
            offsets = {p % 72 for p in ni_positions}
            assert codewords == [0, 1, 2, 3]  # one bit per codeword
            assert len(offsets) == 1  # same offset everywhere

    def test_byte_error_hits_each_codeword_as_stride4_pair(self):
        perm = interleave_permutation()
        for byte_start in range(0, ENTRY_BITS, 8):
            per_codeword: dict[int, list[int]] = {}
            for bit in range(8):
                ni = int(perm[byte_start + bit])
                per_codeword.setdefault(ni // 72, []).append(ni % 72)
            assert sorted(per_codeword) == [0, 1, 2, 3]
            for offsets in per_codeword.values():
                low, high = sorted(offsets)
                assert high - low == 4  # the TrioECC 2b-symbol stride
                assert low % 8 < 4  # aligned to the stride-4 symbol grid

    def test_byte_footprint_aligned_to_symbol_grid(self):
        # The byte's two bits in each codeword form exactly one stride-4
        # symbol (8s + r, 8s + r + 4).
        perm = interleave_permutation()
        for byte_start in range(0, ENTRY_BITS, 8):
            for bit in range(8):
                ni = int(perm[byte_start + bit]) % 72
            # covered by the stride-4 assertion above; here check symbol id
            offsets = sorted(int(perm[byte_start + b]) % 72 for b in range(8))
            symbols = {(o % 8) % 4 + (o // 8) * 4 for o in offsets}
            assert len(symbols) == 4  # one symbol per codeword

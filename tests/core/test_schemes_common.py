"""Behaviour every ECC organization must share.

Parametrized over all nine Table-2 schemes: encode/decode roundtrips,
single-bit correction everywhere, input validation, and — crucially — exact
agreement between the scalar reference decoder and the vectorized batch
decoder used by the Monte Carlo harness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SCHEME_NAMES, DecodeStatus, all_schemes, get_scheme
from repro.core.layout import DATA_BITS, ENTRY_BITS

ALL = list(SCHEME_NAMES)


def _scheme(name):
    return get_scheme(name)


def _random_data(seed=0):
    return np.random.default_rng(seed).integers(0, 2, DATA_BITS, dtype=np.uint8)


@pytest.mark.parametrize("name", ALL)
class TestRoundtrip:
    def test_clean_roundtrip(self, name):
        scheme = _scheme(name)
        data = _random_data()
        result = scheme.decode(scheme.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)

    def test_encoding_deterministic(self, name):
        scheme = _scheme(name)
        data = _random_data(3)
        assert np.array_equal(scheme.encode(data), scheme.encode(data))

    def test_every_single_bit_error_corrected(self, name):
        scheme = _scheme(name)
        data = _random_data(1)
        entry = scheme.encode(data)
        for position in range(0, ENTRY_BITS, 7):  # stride keeps it fast
            received = entry.copy()
            received[position] ^= 1
            result = scheme.decode(received)
            assert result.status is DecodeStatus.CORRECTED, position
            assert np.array_equal(result.data, data), position
            assert position in result.corrected_bits

    def test_roundtrip_helper(self, name):
        scheme = _scheme(name)
        data = _random_data(2)
        error = np.zeros(ENTRY_BITS, dtype=np.uint8)
        error[13] = 1
        result = scheme.roundtrip(data, error)
        assert result.status is DecodeStatus.CORRECTED

    def test_encode_rejects_wrong_length(self, name):
        with pytest.raises(ValueError):
            _scheme(name).encode(np.zeros(100, dtype=np.uint8))

    def test_decode_rejects_wrong_length(self, name):
        with pytest.raises(ValueError):
            _scheme(name).decode(np.zeros(100, dtype=np.uint8))

    def test_batch_rejects_wrong_shape(self, name):
        with pytest.raises(ValueError):
            _scheme(name).decode_batch_errors(np.zeros((4, 100), dtype=np.uint8))


@pytest.mark.parametrize("name", ALL)
class TestBatchAgainstScalar:
    """The batch decoder (zero codeword + error) must agree with the scalar
    decoder (real codeword + error) for every scheme — linearity in action.
    """

    def test_agreement_on_random_errors(self, name):
        scheme = _scheme(name)
        rng = np.random.default_rng(42)
        data = _random_data(7)
        entry = scheme.encode(data)

        errors = (rng.random((200, ENTRY_BITS)) < 0.01).astype(np.uint8)
        errors[0, :] = 0
        errors[0, 5] = 1  # guarantee at least one single-bit case
        batch = scheme.decode_batch_errors(errors)

        for row in range(errors.shape[0]):
            if not errors[row].any():
                continue
            result = scheme.decode(entry ^ errors[row])
            scalar_due = result.status is DecodeStatus.DETECTED
            assert bool(batch.due[row]) == scalar_due, row
            if not scalar_due:
                scalar_sdc = not np.array_equal(result.data, data)
                assert bool(batch.sdc()[row]) == scalar_sdc, row

    def test_zero_error_batch_is_clean(self, name):
        scheme = _scheme(name)
        batch = scheme.decode_batch_errors(np.zeros((3, ENTRY_BITS), dtype=np.uint8))
        assert not batch.due.any()
        assert not batch.residual_data.any()
        assert not batch.corrected.any()

    def test_outcome_partition(self, name):
        scheme = _scheme(name)
        rng = np.random.default_rng(9)
        errors = (rng.random((100, ENTRY_BITS)) < 0.02).astype(np.uint8)
        batch = scheme.decode_batch_errors(errors)
        # Every sample is exactly one of DCE / DUE / SDC.
        total = batch.dce().astype(int) + batch.due.astype(int) + batch.sdc().astype(int)
        assert np.all(total == 1)


class TestRegistry:
    def test_all_schemes_order(self):
        names = [scheme.name for scheme in all_schemes()]
        assert names == list(SCHEME_NAMES)

    def test_aliases(self):
        assert get_scheme("DuetECC").name == "duet"
        assert get_scheme("trioecc").name == "trio"
        assert get_scheme("SECDED").name == "ni-secded"

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            get_scheme("hamming")

    def test_caching(self):
        assert get_scheme("trio") is get_scheme("trio")

    def test_pin_correction_flags(self):
        for scheme in all_schemes():
            expected = scheme.name != "ssc-dsd+"
            assert scheme.corrects_pins == expected, scheme.name

    def test_labels_match_paper(self):
        assert get_scheme("ni-secded").label == "NI:SEC-DED"
        assert "DuetECC" in get_scheme("duet").label
        assert "TrioECC" in get_scheme("trio").label
        assert get_scheme("ssc-dsd+").label == "SSC-DSD+"


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.sampled_from(ALL))
def test_random_data_roundtrips(seed, name):
    scheme = get_scheme(name)
    data = np.random.default_rng(seed).integers(0, 2, DATA_BITS, dtype=np.uint8)
    result = scheme.decode(scheme.encode(data))
    assert result.status is DecodeStatus.CLEAN
    assert np.array_equal(result.data, data)

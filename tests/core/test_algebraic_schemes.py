"""Tests for the rejected Section-6.2 organizations (DSC, SSC-TSD)."""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.algebraic_schemes import DECODER_CYCLES, DSCScheme, SSCTSDScheme
from repro.core.layout import ENTRY_BITS, bits_of_byte, bits_of_pin
from repro.core.registry import EXTENSION_SCHEME_NAMES


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(0).integers(0, 2, 256, dtype=np.uint8)


def _outcome(scheme, entry, data, positions):
    received = entry.copy()
    for position in positions:
        received[position] ^= 1
    result = scheme.decode(received)
    if result.status is DecodeStatus.DETECTED:
        return "DUE"
    return "DCE" if np.array_equal(result.data, data) else "SDC"


class TestRegistry:
    def test_extension_names(self):
        assert EXTENSION_SCHEME_NAMES == ("dsc", "ssc-tsd")
        assert isinstance(get_scheme("dsc"), DSCScheme)
        assert isinstance(get_scheme("ssc-tsd"), SSCTSDScheme)

    def test_decoder_cycle_tags(self):
        # The paper's latency argument: iterative decode needs >= 8 cycles.
        assert DECODER_CYCLES["ssc-dsd+"] == 1
        assert get_scheme("dsc").decoder_cycles >= 8
        assert get_scheme("ssc-tsd").decoder_cycles >= 8

    def test_no_pin_correction(self):
        assert not get_scheme("dsc").corrects_pins
        assert not get_scheme("ssc-tsd").corrects_pins


class TestDSC:
    def test_roundtrip(self, data):
        scheme = get_scheme("dsc")
        result = scheme.decode(scheme.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert np.array_equal(result.data, data)

    def test_corrects_all_single_byte_errors(self, data):
        scheme = get_scheme("dsc")
        entry = scheme.encode(data)
        for byte in range(0, 36, 4):
            positions = [int(b) for b in bits_of_byte(byte)]
            assert _outcome(scheme, entry, data, positions) == "DCE", byte

    def test_corrects_double_byte_errors(self, data):
        """The capability that distinguishes DSC from every single-tier
        scheme the paper keeps."""
        scheme = get_scheme("dsc")
        entry = scheme.encode(data)
        rng = np.random.default_rng(1)
        for _ in range(60):
            first, second = rng.choice(36, size=2, replace=False)
            positions = [int(b) for b in bits_of_byte(int(first))]
            positions += [
                int(b) for b in bits_of_byte(int(second))[: int(rng.integers(1, 9))]
            ]
            assert _outcome(scheme, entry, data, positions) == "DCE"

    def test_dsd_detects_what_dsc_corrects(self, data):
        dsd = get_scheme("ssc-dsd+")
        dsc = get_scheme("dsc")
        positions = [int(b) for b in bits_of_byte(2)] + [int(bits_of_byte(20)[0])]
        assert _outcome(dsd, dsd.encode(data), data, positions) == "DUE"
        assert _outcome(dsc, dsc.encode(data), data, positions) == "DCE"

    def test_pin_errors_detected(self, data):
        scheme = get_scheme("dsc")
        entry = scheme.encode(data)
        for pin in (0, 40, 71):
            positions = [int(b) for b in bits_of_pin(pin)]
            outcome = _outcome(scheme, entry, data, positions)
            # A pin fault spans four symbols: beyond t=2, it must not be
            # silently miscorrected.
            assert outcome == "DUE", pin

    def test_triple_symbol_errors_mostly_detected(self, data):
        scheme = get_scheme("dsc")
        entry = scheme.encode(data)
        rng = np.random.default_rng(2)
        outcomes = []
        for _ in range(100):
            bytes_ = rng.choice(36, size=3, replace=False)
            positions = [int(bits_of_byte(int(b))[rng.integers(8)]) for b in bytes_]
            outcomes.append(_outcome(scheme, entry, data, positions))
        assert outcomes.count("SDC") < 10  # DSC has *some* triple risk

    def test_batch_matches_scalar(self, data):
        scheme = get_scheme("dsc")
        entry = scheme.encode(data)
        rng = np.random.default_rng(3)
        errors = (rng.random((300, ENTRY_BITS)) < 0.015).astype(np.uint8)
        batch = scheme.decode_batch_errors(errors)
        for row in range(300):
            if not errors[row].any():
                continue
            result = scheme.decode(entry ^ errors[row])
            scalar_due = result.status is DecodeStatus.DETECTED
            assert bool(batch.due[row]) == scalar_due, row
            if not scalar_due:
                scalar_sdc = not np.array_equal(result.data, data)
                assert bool(batch.sdc()[row]) == scalar_sdc, row

    def test_higher_sdc_than_dsd_on_entry_errors(self):
        """Aggressive correction costs detection — the Duet/Trio trade-off
        repeated at symbol granularity."""
        from repro.errormodel.sampling import sample_entry_errors

        rng = np.random.default_rng(4)
        errors = sample_entry_errors(4000, rng)
        dsc = get_scheme("dsc").decode_batch_errors(errors)
        dsd = get_scheme("ssc-dsd+").decode_batch_errors(errors)
        assert int(dsc.sdc().sum()) >= int(dsd.sdc().sum())


class TestSSCTSDEquivalence:
    """The DSD+ agreement rule *is* bounded-distance-1 decoding: for a
    distance-5 code the two organizations behave identically."""

    def test_batch_equivalence_random_errors(self):
        rng = np.random.default_rng(5)
        errors = (rng.random((500, ENTRY_BITS)) < 0.03).astype(np.uint8)
        tsd = get_scheme("ssc-tsd").decode_batch_errors(errors)
        dsd = get_scheme("ssc-dsd+").decode_batch_errors(errors)
        assert np.array_equal(tsd.due, dsd.due)
        assert np.array_equal(tsd.residual_data, dsd.residual_data)
        assert np.array_equal(tsd.corrected, dsd.corrected)

    def test_scalar_equivalence_on_byte_errors(self, data):
        tsd = get_scheme("ssc-tsd")
        dsd = get_scheme("ssc-dsd+")
        entry = tsd.encode(data)
        assert np.array_equal(entry, dsd.encode(data))
        for byte in range(0, 36, 6):
            positions = [int(b) for b in bits_of_byte(byte)]
            assert (_outcome(tsd, entry, data, positions)
                    == _outcome(dsd, entry, data, positions) == "DCE")

    def test_guaranteed_triple_detection(self, data):
        scheme = get_scheme("ssc-tsd")
        entry = scheme.encode(data)
        rng = np.random.default_rng(6)
        for _ in range(300):
            bytes_ = rng.choice(36, size=3, replace=False)
            positions = [int(bits_of_byte(int(b))[rng.integers(8)]) for b in bytes_]
            assert _outcome(scheme, entry, data, positions) == "DUE"

"""Tests for the correction sanity check."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import ENTRY_BITS, bits_of_byte, bits_of_pin
from repro.core.sanity_check import csc_violation, csc_violation_batch


class TestScalar:
    def test_single_codeword_never_violates(self):
        assert not csc_violation([0, 100, 200], codewords_correcting=1)

    def test_same_byte_allowed(self):
        positions = [int(b) for b in bits_of_byte(4)[:3]]
        assert not csc_violation(positions, codewords_correcting=3)

    def test_same_pin_allowed(self):
        positions = [int(b) for b in bits_of_pin(10)]
        assert not csc_violation(positions, codewords_correcting=4)

    def test_scattered_corrections_violate(self):
        assert csc_violation([0, 100], codewords_correcting=2)

    def test_same_pin_across_beats_allowed(self):
        # bits 0 and 72 ride pin 0 in beats 0 and 1 — a pin fault.
        assert not csc_violation([0, 72], codewords_correcting=2)

    def test_different_pin_and_byte_across_beats_violates(self):
        # bit 0 (pin 0, byte 0) vs bit 81 (pin 9, byte 10): nothing shared.
        assert csc_violation([0, 81], codewords_correcting=2)

    def test_no_corrections(self):
        assert not csc_violation([], codewords_correcting=0)


class TestBatch:
    def test_matches_scalar_on_constructed_cases(self):
        cases = [
            ([0, 1, 2, 3], 4),
            ([0, 72, 144, 216], 4),  # one pin
            ([0, 100, -1, -1], 2),
            ([5, -1, -1, -1], 1),
            ([-1, -1, -1, -1], 0),
        ]
        positions = np.array([c[0] for c in cases], dtype=np.int64)
        counts = np.array([c[1] for c in cases], dtype=np.int64)
        batch = csc_violation_batch(positions, counts)
        for row, (pos, count) in enumerate(cases):
            valid = [p for p in pos if p >= 0]
            assert batch[row] == csc_violation(valid, count), row

    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=ENTRY_BITS - 1),
                         min_size=0, max_size=8),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_batch_equals_scalar(self, cases):
        width = 8
        positions = np.full((len(cases), width), -1, dtype=np.int64)
        counts = np.zeros(len(cases), dtype=np.int64)
        for row, (pos, count) in enumerate(cases):
            positions[row, : len(pos)] = pos
            counts[row] = count
        batch = csc_violation_batch(positions, counts)
        for row, (pos, count) in enumerate(cases):
            assert bool(batch[row]) == csc_violation(pos, count)

    def test_sentinel_slots_ignored(self):
        positions = np.array([[3, -1, 3, -1]], dtype=np.int64)
        assert not csc_violation_batch(positions, np.array([2]))[0]

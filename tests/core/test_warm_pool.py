"""Warm worker-pool reuse across campaigns in one invocation.

:class:`repro.core.pool.WarmPool` plugs into ``run_with_requeue``'s
``executor_factory`` seam; these tests pin the reuse contract — spawn
once, reuse cleanly-finished executors, retire broken or still-busy ones
so the requeue-onto-a-fresh-pool semantics survive — plus the shared
per-invocation registry the CLI uses.
"""

import pytest

from repro.core.pool import (
    WarmPool,
    close_warm_pools,
    run_with_requeue,
    shared_warm_pool,
)


class _Future:
    def __init__(self, outcome, done=True):
        self.outcome = outcome
        self._done = done

    def result(self, timeout=None):
        if isinstance(self.outcome, BaseException):
            raise self.outcome
        return self.outcome

    def done(self):
        return self._done

    def cancel(self):
        pass


class _Executor:
    """Scripted ProcessPoolExecutor stand-in."""

    def __init__(self):
        self.shutdowns = 0
        self._broken = False

    def submit(self, fn, *args, **kwargs):
        return _Future(f"ok:{args[0]}")

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


class TestWarmPool:
    def test_spawns_once_and_reuses(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        pool = WarmPool(workers=2, factory=factory)
        first = pool.executor_factory()
        first.shutdown(wait=False, cancel_futures=True)
        second = pool.executor_factory()
        second.shutdown(wait=False, cancel_futures=True)
        assert len(made) == 1
        assert pool.spawns == 1 and pool.reuses == 1
        assert made[0].shutdowns == 0  # kept warm through both attempts
        assert pool.counters() == {"warm_pool_spawns": 1,
                                   "warm_pool_reuses": 1}

    def test_broken_executor_is_retired(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        pool = WarmPool(workers=2, factory=factory)
        handle = pool.executor_factory()
        made[0]._broken = True
        handle.shutdown(wait=False, cancel_futures=True)
        assert made[0].shutdowns == 1  # genuinely shut down
        pool.executor_factory()
        assert len(made) == 2  # next attempt got a fresh executor
        assert pool.spawns == 2 and pool.reuses == 0

    def test_in_flight_futures_retire_the_executor(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        pool = WarmPool(workers=2, factory=factory)
        handle = pool.executor_factory()
        handle._futures.append(_Future("hung", done=False))
        handle.shutdown(wait=False, cancel_futures=True)
        assert made[0].shutdowns == 1
        pool.executor_factory()
        assert len(made) == 2

    def test_close_is_idempotent(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        pool = WarmPool(workers=2, factory=factory)
        pool.executor_factory()
        pool.close()
        pool.close()
        assert made[0].shutdowns == 1

    def test_context_manager_closes(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        with WarmPool(workers=2, factory=factory) as pool:
            pool.executor_factory()
        assert made[0].shutdowns == 1

    def test_reuse_through_run_with_requeue(self):
        made = []

        def factory():
            made.append(_Executor())
            return made[-1]

        pool = WarmPool(workers=2, factory=factory)
        for _ in range(3):  # three "campaigns" in one invocation
            results, report = run_with_requeue(
                ["a", "b"],
                key=lambda job: job,
                describe=lambda job: job,
                submit=lambda executor, job: executor.submit(None, job),
                run_serial=lambda job: f"serial:{job}",
                workers=2,
                executor_factory=pool.executor_factory,
            )
            assert results == {"a": "ok:a", "b": "ok:b"}
            assert report.pool_completed == 2
        assert len(made) == 1
        assert pool.spawns == 1 and pool.reuses == 2


class TestSharedRegistry:
    def test_shared_pool_per_worker_count(self):
        try:
            assert shared_warm_pool(2) is shared_warm_pool(2)
            assert shared_warm_pool(2) is not shared_warm_pool(3)
        finally:
            close_warm_pools()

    def test_close_warm_pools_forgets(self):
        first = shared_warm_pool(2)
        close_warm_pools()
        assert shared_warm_pool(2) is not first
        close_warm_pools()

"""Tests for the transmitted-bit coordinate system."""

import numpy as np
import pytest

from repro.core.layout import (
    BITS_PER_BYTE,
    BYTES_PER_BEAT,
    DATA_BITS,
    ECC_BITS,
    ENTRY_BITS,
    NUM_BEATS,
    NUM_BYTES,
    NUM_PINS,
    beat_of,
    bits_of_beat,
    bits_of_byte,
    bits_of_pin,
    byte_of,
    pin_of,
)


class TestConstants:
    def test_entry_is_36_bytes(self):
        assert DATA_BITS == 256
        assert ECC_BITS == 32
        assert ENTRY_BITS == 288

    def test_redundancy_is_12_5_percent(self):
        assert ECC_BITS / DATA_BITS == 0.125

    def test_pins_and_beats(self):
        assert NUM_PINS == 72
        assert NUM_BEATS == 4
        assert NUM_PINS * NUM_BEATS == ENTRY_BITS

    def test_byte_geometry(self):
        assert BYTES_PER_BEAT == 9
        assert NUM_BYTES == 36


class TestCoordinates:
    def test_pin_of(self):
        assert pin_of(0) == 0
        assert pin_of(71) == 71
        assert pin_of(72) == 0
        assert pin_of(287) == 71

    def test_beat_of(self):
        assert beat_of(0) == 0
        assert beat_of(71) == 0
        assert beat_of(72) == 1
        assert beat_of(287) == 3

    def test_byte_of(self):
        assert byte_of(0) == 0
        assert byte_of(7) == 0
        assert byte_of(8) == 1
        assert byte_of(71) == 8
        assert byte_of(72) == 9  # second beat starts byte 9
        assert byte_of(287) == 35

    def test_vectorized(self):
        indices = np.arange(ENTRY_BITS)
        assert pin_of(indices).shape == (ENTRY_BITS,)
        assert int(byte_of(indices).max()) == NUM_BYTES - 1


class TestGroupExpansion:
    def test_bits_of_pin(self):
        assert bits_of_pin(5).tolist() == [5, 77, 149, 221]

    def test_bits_of_byte(self):
        assert bits_of_byte(0).tolist() == list(range(8))
        assert bits_of_byte(9).tolist() == list(range(72, 80))

    def test_bits_of_beat(self):
        assert bits_of_beat(1).tolist() == list(range(72, 144))

    def test_pin_expansion_consistent_with_pin_of(self):
        for pin in (0, 13, 71):
            for index in bits_of_pin(pin):
                assert pin_of(int(index)) == pin

    def test_byte_expansion_consistent_with_byte_of(self):
        for byte in (0, 17, 35):
            for index in bits_of_byte(byte):
                assert byte_of(int(index)) == byte

    def test_bytes_partition_entry(self):
        seen = sorted(
            int(i) for byte in range(NUM_BYTES) for i in bits_of_byte(byte)
        )
        assert seen == list(range(ENTRY_BITS))

    def test_pins_partition_entry(self):
        seen = sorted(
            int(i) for pin in range(NUM_PINS) for i in bits_of_pin(pin)
        )
        assert seen == list(range(ENTRY_BITS))

"""Allocator tuning is observable-behaviour-free: it may only succeed
(True) or degrade to a no-op (False), idempotently, without perturbing
allocation itself."""

import numpy as np

from repro.core import mem
from repro.core.mem import enable_heap_reuse


def test_enable_heap_reuse_is_idempotent_and_boolean():
    first = enable_heap_reuse()
    assert isinstance(first, bool)
    assert enable_heap_reuse() is first  # memoized tri-state
    # allocation still works afterwards, tuned or not
    arr = np.arange(1 << 16, dtype=np.int64)
    assert int(arr.sum()) == (1 << 16) * ((1 << 16) - 1) // 2


def test_reserve_is_monotonic_and_capped(monkeypatch):
    monkeypatch.setattr(mem, "_MAX_RESERVE", 1 << 21)
    monkeypatch.setattr(mem, "_RESERVED", 0)
    enable_heap_reuse(reserve_bytes=1 << 20)
    grown = mem._RESERVED
    assert grown == 1 << 20
    enable_heap_reuse(reserve_bytes=1 << 10)  # smaller request: no shrink
    assert mem._RESERVED == grown
    enable_heap_reuse(reserve_bytes=1 << 30)  # capped at _MAX_RESERVE
    assert mem._RESERVED == 1 << 21

"""Coverage guarantees of the binary organizations (Section 6.1).

These tests pin down the paper's qualitative claims exactly:

* NI:SEC-DED corrects bits and pins opportunistically but silently corrupts
  a sizeable fraction of byte errors (the paper's 23-29%);
* interleaving alone gives half-byte correction and single-byte detection;
* DuetECC detects 100% of byte errors with zero byte-error SDC;
* TrioECC corrects 100% of byte errors;
* every binary organization preserves single-pin correction.
"""

import numpy as np
import pytest

from repro.core import DecodeStatus, get_scheme
from repro.core.layout import ENTRY_BITS, bits_of_byte, bits_of_pin


def _outcome(scheme, entry, data, positions):
    received = entry.copy()
    for position in positions:
        received[position] ^= 1
    result = scheme.decode(received)
    if result.status is DecodeStatus.DETECTED:
        return "DUE"
    return "DCE" if np.array_equal(result.data, data) else "SDC"


def _byte_error_outcomes(scheme, byte_positions=(0, 5, 18, 35), masks=None):
    rng = np.random.default_rng(0)
    data = rng.integers(0, 2, 256, dtype=np.uint8)
    entry = scheme.encode(data)
    masks = masks or [m for m in range(256) if bin(m).count("1") >= 2]
    counts = {"DCE": 0, "DUE": 0, "SDC": 0}
    for byte in byte_positions:
        bits = bits_of_byte(byte)
        for mask in masks:
            positions = [int(bits[b]) for b in range(8) if (mask >> b) & 1]
            counts[_outcome(scheme, entry, data, positions)] += 1
    return counts


def _pin_error_outcomes(scheme, pins=(0, 33, 71)):
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2, 256, dtype=np.uint8)
    entry = scheme.encode(data)
    counts = {"DCE": 0, "DUE": 0, "SDC": 0}
    for pin in pins:
        bits = bits_of_pin(pin)
        for mask in range(1, 16):
            if bin(mask).count("1") < 2:
                continue
            positions = [int(bits[b]) for b in range(4) if (mask >> b) & 1]
            counts[_outcome(scheme, entry, data, positions)] += 1
    return counts


class TestSecDedBaseline:
    def test_byte_errors_never_corrected(self):
        counts = _byte_error_outcomes(get_scheme("ni-secded"))
        assert counts["DCE"] == 0

    def test_byte_error_sdc_near_paper_range(self):
        counts = _byte_error_outcomes(get_scheme("ni-secded"))
        total = sum(counts.values())
        sdc_fraction = counts["SDC"] / total
        # The paper reports 23-29% of byte/beat errors neither corrected
        # nor detected; our Hsiao instance lands close by.
        assert 0.15 < sdc_fraction < 0.40

    def test_pin_errors_all_corrected(self):
        counts = _pin_error_outcomes(get_scheme("ni-secded"))
        assert counts["DUE"] == 0 and counts["SDC"] == 0


class TestInterleavedSecDed:
    def test_byte_errors_zero_sdc(self):
        counts = _byte_error_outcomes(get_scheme("i-secded"))
        assert counts["SDC"] == 0

    def test_half_byte_errors_corrected(self):
        # Errors confined to <= 1 bit per codeword (any mask with at most
        # one bit in each stride-4 residue class) are corrected.
        scheme = get_scheme("i-secded")
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        entry = scheme.encode(data)
        bits = bits_of_byte(3)
        for mask in (0b00010001, 0b00100001, 0b1111, 0b11110000):
            positions = [int(bits[b]) for b in range(8) if (mask >> b) & 1]
            # each codeword sees at most one of the pair bits only for
            # masks with <= 1 bit per (b mod 4) class:
            classes = {}
            for b in range(8):
                if (mask >> b) & 1:
                    classes.setdefault(b % 4, []).append(b)
            expected = (
                "DCE" if all(len(v) == 1 for v in classes.values()) else None
            )
            outcome = _outcome(scheme, entry, data, positions)
            if expected:
                assert outcome == expected, (mask, outcome)

    def test_whole_byte_detected(self):
        scheme = get_scheme("i-secded")
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        entry = scheme.encode(data)
        positions = [int(b) for b in bits_of_byte(7)]
        assert _outcome(scheme, entry, data, positions) == "DUE"


class TestDuetECC:
    def test_all_byte_errors_detected_or_corrected(self):
        counts = _byte_error_outcomes(get_scheme("duet"))
        assert counts["SDC"] == 0

    def test_byte_detection_strength(self):
        counts = _byte_error_outcomes(get_scheme("duet"))
        assert counts["DUE"] > 0  # full bytes cannot be corrected

    def test_pin_errors_corrected(self):
        counts = _pin_error_outcomes(get_scheme("duet"))
        assert counts["DCE"] == sum(counts.values())


class TestTrioECC:
    def test_all_byte_errors_corrected(self):
        counts = _byte_error_outcomes(get_scheme("trio"))
        assert counts["DCE"] == sum(counts.values())

    def test_pin_errors_corrected(self):
        counts = _pin_error_outcomes(get_scheme("trio"))
        assert counts["DCE"] == sum(counts.values())

    def test_exhaustive_all_36_bytes_corrected(self):
        scheme = get_scheme("trio")
        rng = np.random.default_rng(4)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        entry = scheme.encode(data)
        for byte in range(36):
            positions = [int(b) for b in bits_of_byte(byte)]
            assert _outcome(scheme, entry, data, positions) == "DCE", byte


class TestNonInterleavedSec2bEC:
    def test_adjacent_pair_errors_corrected(self):
        scheme = get_scheme("ni-sec2bec")
        rng = np.random.default_rng(5)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        entry = scheme.encode(data)
        # Adjacent aligned pairs within one beat are that layout's symbols.
        for start in (0, 10, 70, 100):
            base = (start // 2) * 2
            positions = [base, base + 1]
            assert _outcome(scheme, entry, data, positions) == "DCE", base

    def test_full_byte_errors_not_corrected(self):
        counts = _byte_error_outcomes(get_scheme("ni-sec2bec"),
                                      masks=[0xFF])
        assert counts["DCE"] == 0


class TestCrossSchemeOrdering:
    def test_trio_reduces_uncorrectable_vs_secded(self):
        secded = _byte_error_outcomes(get_scheme("ni-secded"))
        trio = _byte_error_outcomes(get_scheme("trio"))
        assert trio["DUE"] + trio["SDC"] < secded["DUE"] + secded["SDC"]

    def test_duet_trades_correction_for_detection(self):
        duet = _byte_error_outcomes(get_scheme("duet"))
        trio = _byte_error_outcomes(get_scheme("trio"))
        assert duet["DUE"] > trio["DUE"]
        assert duet["DCE"] < trio["DCE"]

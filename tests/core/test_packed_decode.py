"""The packed syndrome-LUT fast path against the unpacked reference oracle.

`BinaryEntryScheme.decode_batch_errors_reference` is the original
matmul-based batch decoder; the packed path (`decode_batch_errors` /
`decode_batch_packed`) must reproduce its every output field on structured
and random error batches alike.
"""

import numpy as np
import pytest

from repro.core import get_scheme
from repro.core.layout import ENTRY_BITS, ENTRY_WORDS
from repro.core.registry import SCHEME_NAMES, binary_scheme_names
from repro.errormodel.sampling import (
    enumerate_byte_errors,
    enumerate_double_bit_errors,
    enumerate_pin_errors,
)
from repro.gf.gf2 import pack_rows

BINARY = binary_scheme_names()


def _assert_same(reference, other, context):
    assert np.array_equal(reference.due, other.due), context
    assert np.array_equal(reference.residual_data, other.residual_data), context
    assert np.array_equal(reference.corrected, other.corrected), context


def _batches():
    rng = np.random.default_rng(2024)
    return {
        "sparse": (rng.random((1500, ENTRY_BITS)) < 0.01).astype(np.uint8),
        "dense": (rng.random((800, ENTRY_BITS)) < 0.25).astype(np.uint8),
        "pins": enumerate_pin_errors(),
        "bytes": enumerate_byte_errors(),
        "doubles": enumerate_double_bit_errors()[::7],
        "zero": np.zeros((4, ENTRY_BITS), dtype=np.uint8),
    }


@pytest.mark.parametrize("name", BINARY)
class TestPackedAgainstReference:
    def test_bit_input_matches_reference(self, name):
        scheme = get_scheme(name)
        for batch_name, errors in _batches().items():
            _assert_same(
                scheme.decode_batch_errors_reference(errors),
                scheme.decode_batch_errors(errors),
                (name, batch_name),
            )

    def test_packed_input_matches_reference(self, name):
        scheme = get_scheme(name)
        for batch_name, errors in _batches().items():
            _assert_same(
                scheme.decode_batch_errors_reference(errors),
                scheme.decode_batch_packed(pack_rows(errors)),
                (name, batch_name),
            )

    def test_packed_tables_built(self, name):
        assert get_scheme(name)._packed_ok


@pytest.mark.parametrize("name", SCHEME_NAMES)
class TestPackedEntryPoint:
    """decode_batch_packed exists on every scheme (default: unpack+delegate)."""

    def test_packed_equals_unpacked(self, name):
        scheme = get_scheme(name)
        rng = np.random.default_rng(11)
        errors = (rng.random((300, ENTRY_BITS)) < 0.02).astype(np.uint8)
        _assert_same(
            scheme.decode_batch_errors(errors),
            scheme.decode_batch_packed(pack_rows(errors)),
            name,
        )

    def test_rejects_wrong_shape(self, name):
        scheme = get_scheme(name)
        with pytest.raises(ValueError):
            scheme.decode_batch_packed(
                np.zeros((3, ENTRY_WORDS + 1), dtype=np.uint64)
            )

"""Concurrent writers racing the same content-addressed artifact key.

The store's write contract is tmp-file + fsync + atomic rename, so two
sessions computing the same artifact must converge on one durable,
readable file — no torn JSONL, no quarantine, regardless of interleaving.
(The serve daemon's dedupe prevents the *double computation*; these tests
prove the layer below stays correct even when two computations do race,
e.g. a daemon and a direct CLI run sharing one store.)
"""

import json
import multiprocessing
import threading

import pytest

from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.runs.store import RunStore

OUTCOME = PatternOutcome(pattern=ErrorPattern.BIT, events=100,
                         dce=0.75, due=0.25, sdc=0.0, exhaustive=True)

KEY = "aa" * 32


def _write_cell(root, barrier=None, errors=None):
    try:
        if barrier is not None:
            barrier.wait()
        RunStore(root).save_cell(KEY, OUTCOME)
    except Exception as exc:  # pragma: no cover - failure path
        if errors is None:
            raise
        errors.append(exc)


def _write_campaign(root, barrier=None, errors=None):
    try:
        if barrier is not None:
            barrier.wait()
        RunStore(root).save_campaign(
            KEY, {"config": {"runs": 1}}, [{"run": 0, "events": 7}])
    except Exception as exc:  # pragma: no cover - failure path
        if errors is None:
            raise
        errors.append(exc)


class TestThreadRaces:
    def test_racing_cell_writers_one_durable_artifact(self, tmp_path):
        barrier = threading.Barrier(8)
        errors = []
        threads = [threading.Thread(target=_write_cell,
                                    args=(tmp_path, barrier, errors))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []  # every racer completed its write
        store = RunStore(tmp_path)
        loaded = store.load_cell(KEY)
        assert loaded == OUTCOME
        # nothing was quarantined and no tmp litter survived
        assert not list(store.quarantine_dir().glob("*"))
        assert not list(tmp_path.rglob("*.tmp*"))

    def test_racing_campaign_writers_one_durable_artifact(self, tmp_path):
        barrier = threading.Barrier(8)
        errors = []
        threads = [threading.Thread(target=_write_campaign,
                                    args=(tmp_path, barrier, errors))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []  # every racer completed its write
        store = RunStore(tmp_path)
        loaded = store.load_campaign(KEY)
        assert loaded is not None
        meta, records = loaded
        assert records == [{"run": 0, "events": 7}]
        assert not list(store.quarantine_dir().glob("*"))


@pytest.mark.slow
class TestProcessRaces:
    def test_cross_process_cell_race(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_write_cell, args=(str(tmp_path),))
                 for _ in range(4)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0
        store = RunStore(tmp_path)
        assert store.load_cell(KEY) == OUTCOME
        assert not list(store.quarantine_dir().glob("*"))
        # the artifact is valid JSONL end to end (no torn trailer)
        lines = store.cell_path(KEY).read_text().splitlines()
        for line in lines:
            json.loads(line)

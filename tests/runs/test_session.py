"""RunSession lifecycle: manifests, resume semantics, checkpoint logs."""

import json

import pytest

from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.runs import CellCache, RunSession, RunStore, UnknownRunError

OUTCOME = PatternOutcome(ErrorPattern.BEAT, 500, 0.8, 0.15, 0.05, False, 0.2)


@pytest.fixture
def root(tmp_path):
    return tmp_path / "store"


class TestLifecycle:
    def test_begin_writes_running_manifest(self, root):
        session = RunSession.begin("fig8", {"samples": 100}, root=root)
        on_disk = RunStore(root).load_manifest(session.run_id)
        assert on_disk.status == "running"
        assert on_disk.command == "fig8"
        assert on_disk.config == {"samples": 100}
        assert on_disk.fingerprint == session.fingerprint
        assert on_disk.finished_at is None

    def test_active_completes_and_records_counters(self, root):
        session = RunSession.begin("fig8", {}, root=root)
        with session.active():
            session.cell_cache.hits = 5
            session.cell_cache.misses = 2
        on_disk = RunStore(root).load_manifest(session.run_id)
        assert on_disk.status == "completed"
        assert (on_disk.cache_hits, on_disk.cache_misses) == (5, 2)
        assert on_disk.duration_s is not None

    def test_active_marks_failed_and_reraises(self, root):
        session = RunSession.begin("fig8", {}, root=root)
        with pytest.raises(RuntimeError, match="boom"):
            with session.active():
                raise RuntimeError("boom")
        assert RunStore(root).load_manifest(session.run_id).status == "failed"

    def test_stage_timing(self, root):
        session = RunSession.begin("fig8", {}, root=root)
        with session.active():
            with session.stage("evaluate"):
                pass
        on_disk = RunStore(root).load_manifest(session.run_id)
        assert "evaluate" in on_disk.stages
        assert on_disk.stages["evaluate"] >= 0.0


class TestResume:
    def test_resume_restores_prior_config(self, root):
        first = RunSession.begin(
            "evaluate", {"scheme": "trio", "samples": 123}, root=root,
        )
        first.finish("failed")
        second = RunSession.begin(
            "evaluate", {"scheme": "duet", "samples": 999},
            root=root, resume=first.run_id,
        )
        assert second.config == {"scheme": "trio", "samples": 123}
        assert second.manifest.resumed_from == first.run_id
        assert second.run_id != first.run_id

    def test_resume_unknown_run(self, root):
        with pytest.raises(UnknownRunError):
            RunSession.begin("fig8", {}, root=root, resume="nope")

    def test_resume_wrong_command(self, root):
        first = RunSession.begin("fig8", {}, root=root)
        first.finish()
        with pytest.raises(ValueError, match="fig8"):
            RunSession.begin("campaign", {}, root=root, resume=first.run_id)


class TestCheckpointLog:
    def test_cell_record_appends_checkpoint_line(self, root):
        session = RunSession.begin("fig8", {}, root=root)
        session.cell_cache.record("trio", ErrorPattern.BEAT, 500, 7, False,
                                  OUTCOME)
        lines = [
            json.loads(line)
            for line in session.store.checkpoint_path(session.run_id)
            .read_text().splitlines()
        ]
        assert len(lines) == 1
        assert lines[0]["kind"] == "cell"
        assert lines[0]["scheme"] == "trio"
        assert lines[0]["pattern"] == "BEAT"

    def test_detached_cache_skips_checkpoint(self, root):
        cache = CellCache(RunStore(root))
        cache.record("trio", ErrorPattern.BEAT, 500, 7, False, OUTCOME)
        assert cache.lookup("trio", ErrorPattern.BEAT, 500, 7, False) == OUTCOME
        assert (cache.hits, cache.misses) == (1, 0)

    def test_campaign_checkpoint_round_trip(self, root):
        class _Clock:
            elapsed_s = 12.5
            fluence = 3.0e6

        session = RunSession.begin("campaign", {}, root=root)
        checkpoint = session.campaign_checkpoint()
        checkpoint.record_run(0, [object(), object()], _Clock())
        checkpoint.record_run(1, [], _Clock())
        runs = checkpoint.completed_runs()
        assert [entry["run"] for entry in runs] == [0, 1]
        assert runs[0]["records"] == 2

    def test_campaign_checkpoint_tolerates_torn_line(self, root):
        class _Clock:
            elapsed_s = 1.0
            fluence = 2.0

        session = RunSession.begin("campaign", {}, root=root)
        checkpoint = session.campaign_checkpoint()
        checkpoint.record_run(0, [], _Clock())
        with open(checkpoint.path, "a") as handle:
            handle.write('{"kind": "campaign-run", "run": 1')  # killed mid-write
        assert [entry["run"] for entry in checkpoint.completed_runs()] == [0]

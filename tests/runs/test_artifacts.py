"""Checksummed JSONL artifacts: round trips, atomicity, damage detection."""

import pytest

from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.runs.artifacts import (
    ArtifactCorrupt,
    outcome_from_record,
    outcome_to_record,
    read_jsonl,
    write_jsonl_atomic,
)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "a.jsonl"
        records = [{"kind": "cell"}, {"x": 1.5, "y": [1, 2, 3]}]
        write_jsonl_atomic(path, records)
        assert read_jsonl(path) == records

    def test_empty_records(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl_atomic(path, [])
        assert read_jsonl(path) == []

    def test_no_temp_file_left_behind(self, tmp_path):
        write_jsonl_atomic(tmp_path / "a.jsonl", [{"k": 1}])
        assert [p.name for p in tmp_path.iterdir()] == ["a.jsonl"]

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "a.jsonl"
        write_jsonl_atomic(path, [{"k": 1}, {"k": 2}])
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactCorrupt):
            read_jsonl(path)

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "a.jsonl"
        write_jsonl_atomic(path, [{"value": 12345}])
        path.write_text(path.read_text().replace("12345", "12346", 1))
        with pytest.raises(ArtifactCorrupt, match="checksum"):
            read_jsonl(path)

    def test_missing_trailer_detected(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text('{"k": 1}\n')
        with pytest.raises(ArtifactCorrupt, match="trailer"):
            read_jsonl(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactCorrupt):
            read_jsonl(tmp_path / "nope.jsonl")


class TestOutcomeCodec:
    def test_exact_float_round_trip(self):
        # Deliberately awkward floats: only an exact round trip keeps the
        # cache hit bit-identical to the cold run.
        outcome = PatternOutcome(
            pattern=ErrorPattern.BEAT,
            events=20_000,
            dce=0.1 + 0.2,
            due=1.0 / 3.0,
            sdc=1.0 - (0.1 + 0.2) - 1.0 / 3.0,
            exhaustive=False,
            elapsed_s=0.123456789,
        )
        restored = outcome_from_record(outcome_to_record(outcome))
        assert restored == outcome
        assert restored.dce.hex() == outcome.dce.hex()
        assert restored.sdc.hex() == outcome.sdc.hex()
        assert restored.elapsed_s == outcome.elapsed_s

    def test_json_round_trip_through_disk(self, tmp_path):
        outcome = PatternOutcome(ErrorPattern.ENTRY, 7, 0.7, 0.2, 0.1, False)
        path = tmp_path / "cell.jsonl"
        write_jsonl_atomic(path, [outcome_to_record(outcome)])
        (record,) = read_jsonl(path)
        assert outcome_from_record(record) == outcome

"""The run store wired into the Monte Carlo harness.

Covers the acceptance-critical behaviors: warm-cache runs bit-identical to
cold ones, interrupted sweeps resuming with only the unfinished cells
recomputed, and fan-out failures degrading to serial instead of killing
the sweep.
"""

import logging

import pytest

from repro.core import get_scheme
from repro.errormodel import montecarlo
from repro.errormodel.montecarlo import evaluate_scheme, sdc_risk_table
from repro.errormodel.patterns import ErrorPattern
from repro.runs import CellCache, RunStore

SAMPLES = 300
SEED = 99


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestCacheParity:
    def test_warm_run_bit_identical_to_cold(self, store):
        scheme = get_scheme("trio")
        cold_cache = CellCache(store)
        cold = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                               cache=cold_cache)
        assert (cold_cache.hits, cold_cache.misses) == (0, 7)

        warm_cache = CellCache(store)
        warm = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                               cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (7, 0)

        assert warm == cold
        for pattern in ErrorPattern:
            assert warm[pattern].sdc.hex() == cold[pattern].sdc.hex()
            assert warm[pattern].dce.hex() == cold[pattern].dce.hex()
            assert warm[pattern].due.hex() == cold[pattern].due.hex()

    def test_cache_matches_uncached(self, store):
        scheme = get_scheme("duet")
        plain = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
        cached = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                                 cache=CellCache(store))
        assert cached == plain

    def test_exhaustive_cells_shared_across_configs(self, store):
        scheme = get_scheme("trio")
        evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                        cache=CellCache(store))
        other = CellCache(store)
        evaluate_scheme(scheme, samples=SAMPLES * 2, seed=SEED + 1,
                        cache=other)
        # BIT/PIN/BYTE/2-bit are enumerated, so they hit despite the new
        # samples/seed; the three sampled patterns are genuine misses.
        assert (other.hits, other.misses) == (4, 3)


class TestResumeAfterInterrupt:
    def test_only_unfinished_cells_recompute(self, store):
        schemes = [get_scheme("trio"), get_scheme("duet")]
        baseline = sdc_risk_table(schemes, samples=SAMPLES, seed=SEED)

        class _Interrupted(CellCache):
            """Dies mid-sweep, like a user hitting Ctrl-C."""

            recorded = 0

            def record(self, *args, **kwargs):
                super().record(*args, **kwargs)
                type(self).recorded += 1
                if self.recorded >= 3:
                    raise KeyboardInterrupt

        first = _Interrupted(store)
        with pytest.raises(KeyboardInterrupt):
            sdc_risk_table(schemes, samples=SAMPLES, seed=SEED, cache=first)

        resumed_cache = CellCache(store)
        resumed = sdc_risk_table(schemes, samples=SAMPLES, seed=SEED,
                                 cache=resumed_cache)
        assert resumed_cache.hits == 3
        assert resumed_cache.misses == 14 - 3
        assert resumed == baseline


class _FakeFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self, timeout=None):
        raise self._exc

    def cancel(self):
        pass


class _FakePool:
    """Stands in for ProcessPoolExecutor; every cell fails the same way."""

    exc_factory = None

    def __init__(self, max_workers=None, initializer=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _FakeFuture(self.exc_factory())

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestGracefulDegradation:
    def _patched(self, monkeypatch, exc_factory):
        pool = type("_Pool", (_FakePool,), {"exc_factory": staticmethod(exc_factory)})
        monkeypatch.setattr(montecarlo, "ProcessPoolExecutor", pool)

    def test_broken_pool_falls_back_to_serial(self, monkeypatch, caplog):
        self._patched(monkeypatch, lambda: montecarlo.BrokenExecutor("fake"))
        scheme = get_scheme("trio")
        serial = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
        with caplog.at_level(logging.WARNING,
                             logger="repro.errormodel.montecarlo"):
            fanned = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                                     workers=4)
        assert fanned == serial
        assert any("worker pool broke" in rec.message for rec in caplog.records)
        assert any("falling back" in rec.message for rec in caplog.records)

    def test_cell_timeout_falls_back_to_serial(self, monkeypatch, caplog):
        self._patched(monkeypatch, lambda: montecarlo._FuturesTimeout())
        scheme = get_scheme("trio")
        serial = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
        with caplog.at_level(logging.WARNING,
                             logger="repro.errormodel.montecarlo"):
            fanned = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                                     workers=4, cell_timeout=0.01)
        assert fanned == serial
        assert any("exceeded" in rec.message for rec in caplog.records)

    def test_pool_that_cannot_start_falls_back(self, monkeypatch, caplog):
        def _raise(max_workers=None, initializer=None):
            raise OSError("no more processes")

        monkeypatch.setattr(montecarlo, "ProcessPoolExecutor", _raise)
        scheme = get_scheme("duet")
        serial = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
        with caplog.at_level(logging.WARNING,
                             logger="repro.errormodel.montecarlo"):
            fanned = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                                     workers=4)
        assert fanned == serial
        assert any("cannot start worker pool" in rec.message
                   for rec in caplog.records)

"""End-to-end CLI round trips through ``main()``: caching flags, resume,
and the ``repro runs`` maintenance subcommand."""

import pytest

from repro.cli import main
from repro.runs import RunStore


@pytest.fixture
def root(tmp_path):
    return tmp_path / "store"


def _strip_summary(out: str) -> str:
    """Drop the run-id-bearing summary line so outputs can be compared."""
    return "\n".join(
        line for line in out.splitlines()
        if not line.startswith("[repro runs]")
    )


class TestCachedCommands:
    def test_fig8_warm_run_hits_and_matches(self, root, capsys):
        assert main(["fig8", "--samples", "60", "--runs-dir", str(root)]) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits, 63 misses" in cold

        assert main(["fig8", "--samples", "60", "--runs-dir", str(root)]) == 0
        warm = capsys.readouterr().out
        assert "63 cache hits, 0 misses" in warm
        assert _strip_summary(warm) == _strip_summary(cold)

    def test_no_cache_prints_no_summary_and_writes_nothing(self, root, capsys):
        assert main(["evaluate", "trio", "--samples", "40", "--no-cache",
                     "--runs-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "[repro runs]" not in out
        assert not root.exists()

    def test_evaluate_records_manifest(self, root, capsys):
        assert main(["evaluate", "trio", "--samples", "40",
                     "--runs-dir", str(root)]) == 0
        capsys.readouterr()
        (manifest,) = RunStore(root).list_runs()
        assert manifest.command == "evaluate"
        assert manifest.status == "completed"
        assert manifest.config["scheme"] == "trio"
        assert manifest.config["samples"] == 40
        assert (manifest.cache_hits, manifest.cache_misses) == (0, 7)
        assert "evaluate" in manifest.stages

    def test_resume_restores_stored_parameters(self, root, capsys):
        assert main(["evaluate", "trio", "--samples", "40",
                     "--runs-dir", str(root)]) == 0
        first_out = capsys.readouterr().out
        (first,) = RunStore(root).list_runs()

        # Different --samples on the command line: --resume must win, so
        # every cell is already in the store.
        assert main(["evaluate", "trio", "--samples", "9999",
                     "--resume", first.run_id, "--runs-dir", str(root)]) == 0
        second_out = capsys.readouterr().out
        assert "7 cache hits, 0 misses" in second_out
        assert _strip_summary(second_out) == _strip_summary(first_out)

        resumed = RunStore(root).load_manifest(
            [m for m in RunStore(root).list_runs()
             if m.run_id != first.run_id][0].run_id
        )
        assert resumed.resumed_from == first.run_id
        assert resumed.config["samples"] == 40

    def test_resume_unknown_run_exits_2(self, root, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["evaluate", "trio", "--resume", "nope",
                  "--runs-dir", str(root)])
        assert excinfo.value.code == 2
        assert "no run 'nope'" in capsys.readouterr().err


class TestRunsSubcommand:
    def _seed_run(self, root, capsys, samples="40"):
        main(["evaluate", "trio", "--samples", samples,
              "--runs-dir", str(root)])
        capsys.readouterr()
        return RunStore(root).list_runs()[0]

    def test_list(self, root, capsys):
        manifest = self._seed_run(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "list"]) == 0
        out = capsys.readouterr().out
        assert manifest.run_id in out
        assert "evaluate" in out

    def test_list_empty_store(self, root, capsys):
        assert main(["runs", "--runs-dir", str(root), "list"]) == 0
        assert "no runs stored" in capsys.readouterr().out

    def test_show(self, root, capsys):
        manifest = self._seed_run(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "show",
                     manifest.run_id]) == 0
        out = capsys.readouterr().out
        assert manifest.run_id in out
        assert "completed" in out
        assert '"samples": 40' in out
        assert "checkpoint 7 completed cells" in out

    def test_show_unknown_run(self, root, capsys):
        assert main(["runs", "--runs-dir", str(root), "show", "nope"]) == 2
        assert "no run 'nope'" in capsys.readouterr().err

    def test_diff(self, root, capsys):
        a = self._seed_run(root, capsys, samples="40")
        b = self._seed_run(root, capsys, samples="80")
        if b.run_id == a.run_id:  # list_runs()[0] is newest
            pytest.fail("expected two distinct runs")
        assert main(["runs", "--runs-dir", str(root), "diff",
                     a.run_id, b.run_id]) == 0
        out = capsys.readouterr().out
        assert "config.samples" in out
        assert "40" in out and "80" in out

    def test_diff_identical(self, root, capsys):
        a = self._seed_run(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "diff",
                     a.run_id, a.run_id]) == 0
        assert "identical" in capsys.readouterr().out

    def test_gc(self, root, capsys):
        self._seed_run(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "gc", "--all",
                     "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert RunStore(root).list_runs()  # dry run kept everything

        assert main(["runs", "--runs-dir", str(root), "gc", "--all"]) == 0
        assert "removed" in capsys.readouterr().out
        assert RunStore(root).list_runs() == []


class TestTraceSubcommand:
    def _seed_campaign(self, root, capsys):
        main(["campaign", "--runs", "1", "--events", "1200", "--workers",
              "2", "--runs-dir", str(root)])
        capsys.readouterr()
        return RunStore(root).list_runs()[0]

    def test_trace_renders_the_stage_tree_with_worker_spans(self, root,
                                                            capsys):
        manifest = self._seed_campaign(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "trace",
                     manifest.run_id]) == 0
        out = capsys.readouterr().out
        assert f"trace of run {manifest.run_id}" in out
        for name in ("campaign", "statistics", "chunk", "synthesize",
                     "scan", "postprocess"):
            assert name in out
        assert "[pid:" in out  # worker provenance made it into the render
        assert "slowest" in out

    def test_show_advertises_the_stored_trace(self, root, capsys):
        manifest = self._seed_campaign(root, capsys)
        assert main(["runs", "--runs-dir", str(root), "show",
                     manifest.run_id]) == 0
        assert f"repro runs trace {manifest.run_id}" \
            in capsys.readouterr().out

    def test_missing_trace_exits_1(self, root, capsys):
        from repro.runs import RunManifest, new_run_id

        store = RunStore(root)
        manifest = RunManifest(run_id=new_run_id(), command="fig8",
                               config={}, status="completed")
        manifest.save(store.manifest_path(manifest.run_id))
        assert main(["runs", "--runs-dir", str(root), "trace",
                     manifest.run_id]) == 1
        assert "no stored trace" in capsys.readouterr().out

    def test_unknown_run_exits_2(self, root, capsys):
        assert main(["runs", "--runs-dir", str(root), "trace", "nope"]) == 2
        assert "no run 'nope'" in capsys.readouterr().err

    def test_corrupt_trace_renders_valid_prefix_with_warning(self, root,
                                                             capsys):
        manifest = self._seed_campaign(root, capsys)
        path = RunStore(root).trace_path(manifest.run_id)
        path.write_text(path.read_text()[:-40])  # torn write
        assert main(["runs", "--runs-dir", str(root), "trace",
                     manifest.run_id]) == 0
        out, err = capsys.readouterr()
        assert "damaged" in err
        # The surviving prefix still renders as a tree.
        assert f"trace of run {manifest.run_id}" in out
        assert "campaign" in out

    def test_wholly_garbage_trace_warns_and_renders_nothing(self, root,
                                                            capsys):
        from repro.runs import RunManifest, new_run_id

        store = RunStore(root)
        manifest = RunManifest(run_id=new_run_id(), command="fig8",
                               config={}, status="completed")
        manifest.save(store.manifest_path(manifest.run_id))
        store.trace_path(manifest.run_id).write_bytes(b"\x00\xff not json")
        assert main(["runs", "--runs-dir", str(root), "trace",
                     manifest.run_id]) == 0
        out, err = capsys.readouterr()
        assert "damaged" in err
        assert "0 spans" in out


class TestManifestTolerance:
    def _write_manifest(self, root, payload):
        import json

        store = RunStore(root)
        path = store.manifest_path(payload["run_id"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))
        return store

    def test_old_schema_manifest_still_lists_and_shows(self, root, capsys):
        # A manifest from before counters/stages/cache accounting existed.
        store = self._write_manifest(root, {
            "schema": 0,
            "run_id": "20200101T000000-aaaaaa",
            "command": "fig8",
            "config": {"samples": 10},
            "status": "completed",
            "started_at": 1577836800.0,
        })
        (listed,) = store.list_runs()
        assert listed.run_id == "20200101T000000-aaaaaa"
        assert listed.counters == {}
        assert main(["runs", "--runs-dir", str(root), "show",
                     listed.run_id]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "2020-01-01 00:00:00Z" in out

    def test_manifest_with_unknown_future_fields_loads(self, root):
        store = self._write_manifest(root, {
            "schema": 9,
            "run_id": "20990101T000000-bbbbbb",
            "command": "evaluate",
            "config": {},
            "status": "completed",
            "started_at": 1.0,
            "from_the_future": {"nested": True},
        })
        loaded = store.load_manifest("20990101T000000-bbbbbb")
        assert loaded.command == "evaluate"
        assert not hasattr(loaded, "from_the_future")

    def test_manifest_missing_identity_is_skipped_not_fatal(self, root,
                                                            capsys):
        self._write_manifest(root, {
            "run_id": "20200101T000000-cccccc",
            "command": "fig8",
            "config": {},
            "status": "completed",
            "started_at": 2.0,
        })
        store = self._write_manifest(root, {"run_id": "broken-no-command"})
        assert [m.run_id for m in store.list_runs()] \
            == ["20200101T000000-cccccc"]
        assert main(["runs", "--runs-dir", str(root), "show",
                     "broken-no-command"]) == 2
        assert "no run" in capsys.readouterr().err

    def test_timestamps_render_in_utc_not_local_time(self, root, capsys,
                                                     monkeypatch):
        import time

        monkeypatch.setenv("TZ", "America/Los_Angeles")
        time.tzset()
        try:
            self._write_manifest(root, {
                "run_id": "20240615T120000-dddddd",
                "command": "fig8",
                "config": {},
                "status": "completed",
                "started_at": 1718452800.0,  # 2024-06-15 12:00:00 UTC
            })
            assert main(["runs", "--runs-dir", str(root), "show",
                         "20240615T120000-dddddd"]) == 0
            out = capsys.readouterr().out
            # Must match the UTC stamp in the run id, not local (05:00).
            assert "2024-06-15 12:00:00Z" in out
        finally:
            monkeypatch.delenv("TZ", raising=False)
            time.tzset()

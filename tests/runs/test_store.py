"""The content-addressed store: keys, corruption recovery, gc, manifests."""

import pytest

from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.runs import (
    RunManifest,
    RunStore,
    UnknownRunError,
    code_fingerprint,
    new_run_id,
)

OUTCOME = PatternOutcome(ErrorPattern.BEAT, 500, 0.8, 0.15, 0.05, False, 0.2)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestKeys:
    def test_key_is_stable(self):
        args = ("trio", ErrorPattern.BEAT, 1000, 7, False, "abc")
        assert RunStore.cell_key(*args) == RunStore.cell_key(*args)

    def test_key_varies_with_identity(self):
        base = RunStore.cell_key("trio", ErrorPattern.BEAT, 1000, 7, False, "abc")
        assert RunStore.cell_key("duet", ErrorPattern.BEAT, 1000, 7, False, "abc") != base
        assert RunStore.cell_key("trio", ErrorPattern.ENTRY, 1000, 7, False, "abc") != base
        assert RunStore.cell_key("trio", ErrorPattern.BEAT, 2000, 7, False, "abc") != base
        assert RunStore.cell_key("trio", ErrorPattern.BEAT, 1000, 8, False, "abc") != base

    def test_code_fingerprint_invalidates(self):
        base = RunStore.cell_key("trio", ErrorPattern.BEAT, 1000, 7, False,
                                 code_fingerprint())
        other = RunStore.cell_key("trio", ErrorPattern.BEAT, 1000, 7, False,
                                  "deadbeefdeadbeef")
        assert base != other

    def test_exhaustive_cells_ignore_samples_and_seed(self):
        # BIT/PIN/BYTE/2-bit cells are enumerated, never sampled: any
        # (samples, seed) pair must share one artifact.
        a = RunStore.cell_key("trio", ErrorPattern.BIT, 1000, 7, False, "abc")
        b = RunStore.cell_key("trio", ErrorPattern.BIT, 9999, 42, False, "abc")
        assert a == b

    def test_triples_split_on_exhaustive_flag(self):
        sampled = RunStore.cell_key("trio", ErrorPattern.TRIPLE_BIT,
                                    1000, 7, False, "abc")
        enumerated = RunStore.cell_key("trio", ErrorPattern.TRIPLE_BIT,
                                       1000, 7, True, "abc")
        assert sampled != enumerated
        # ... and the enumerated key is itself samples/seed-free.
        assert enumerated == RunStore.cell_key(
            "trio", ErrorPattern.TRIPLE_BIT, 5, 99, True, "abc")


class TestCellArtifacts:
    def test_save_load_round_trip(self, store):
        key = "ab" + "0" * 62
        store.save_cell(key, OUTCOME)
        assert store.load_cell(key) == OUTCOME

    def test_missing_is_none(self, store):
        assert store.load_cell("ff" + "0" * 62) is None

    def test_corrupt_artifact_purged_and_recomputed(self, store):
        key = "ab" + "0" * 62
        store.save_cell(key, OUTCOME)
        path = store.cell_path(key)
        path.write_text(path.read_text()[:-20])  # torn write
        assert store.load_cell(key) is None  # detected -> miss
        assert not path.exists()  # purged so the recompute can overwrite
        store.save_cell(key, OUTCOME)
        assert store.load_cell(key) == OUTCOME

    def test_wrong_kind_rejected(self, store):
        key = "ab" + "0" * 62
        store.save_campaign(key, {"elapsed_s": 1.0}, [])
        # A campaign artifact dropped where a cell is expected is corrupt.
        store.cell_path(key).parent.mkdir(parents=True, exist_ok=True)
        store.campaign_path(key).replace(store.cell_path(key))
        assert store.load_cell(key) is None


class TestCampaignArtifacts:
    def test_round_trip(self, store):
        key = "cd" + "0" * 62
        meta = {"elapsed_s": 12.5, "n_events": 3}
        records = [{"time_s": 1.0, "entry_index": 5}]
        store.save_campaign(key, meta, records)
        assert store.load_campaign(key) == (meta, records)

    def test_empty_records(self, store):
        key = "cd" + "0" * 62
        store.save_campaign(key, {"n_events": 0}, [])
        assert store.load_campaign(key) == ({"n_events": 0}, [])


class TestManifests:
    def test_round_trip(self, store):
        manifest = RunManifest(
            run_id=new_run_id(), command="fig8",
            config={"samples": 100, "seed": 1}, started_at=123.0,
            version="1.0.0", fingerprint="abc",
        )
        manifest.save(store.manifest_path(manifest.run_id))
        loaded = store.load_manifest(manifest.run_id)
        assert loaded == manifest

    def test_unknown_run(self, store):
        with pytest.raises(UnknownRunError):
            store.load_manifest("20990101T000000-ffffff")

    def test_list_runs_newest_first(self, store):
        for started in (10.0, 30.0, 20.0):
            manifest = RunManifest(
                run_id=new_run_id(started) + f"-{started}", command="fig8",
                config={}, started_at=started,
            )
            manifest.save(store.manifest_path(manifest.run_id))
        assert [m.started_at for m in store.list_runs()] == [30.0, 20.0, 10.0]


class TestGC:
    def test_gc_all(self, store):
        store.save_cell("ab" + "0" * 62, OUTCOME)
        manifest = RunManifest(run_id=new_run_id(), command="fig8", config={},
                               status="completed")
        manifest.save(store.manifest_path(manifest.run_id))
        dry = store.gc(days=0.0, dry_run=True)
        assert (dry.artifacts, dry.runs) == (1, 1)
        assert store.load_cell("ab" + "0" * 62) is not None  # dry run kept it
        stats = store.gc(days=0.0)
        assert (stats.artifacts, stats.runs) == (1, 1)
        assert stats.bytes > 0
        assert store.load_cell("ab" + "0" * 62) is None
        assert store.list_runs() == []

    def test_gc_keeps_recent(self, store):
        store.save_cell("ab" + "0" * 62, OUTCOME)
        stats = store.gc(days=30.0)
        assert stats.artifacts == 0
        assert store.load_cell("ab" + "0" * 62) is not None

    def test_env_var_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "via-env"))
        assert RunStore().root == tmp_path / "via-env"
        monkeypatch.delenv("REPRO_RUNS_DIR")
        assert RunStore().root.name == "repro-runs"


class TestGCGuard:
    """gc must never collect in-progress or resumable runs, nor the
    artifacts their checkpoints reference."""

    def _run(self, store, status, checkpoint_keys=()):
        import json

        manifest = RunManifest(run_id=new_run_id(), command="fig8",
                               config={}, status=status)
        manifest.save(store.manifest_path(manifest.run_id))
        if checkpoint_keys:
            checkpoint = store.checkpoint_path(manifest.run_id)
            with open(checkpoint, "a") as handle:
                for key in checkpoint_keys:
                    handle.write(json.dumps({"kind": "cell", "key": key})
                                 + "\n")
        return manifest

    def test_running_run_survives_gc(self, store):
        manifest = self._run(store, "running")
        stats = store.gc(days=0.0)
        assert stats.runs == 0
        assert stats.protected == 1
        assert store.load_manifest(manifest.run_id).run_id == manifest.run_id

    def test_failed_run_is_resumable_and_survives(self, store):
        manifest = self._run(store, "failed")
        stats = store.gc(days=0.0)
        assert stats.runs == 0
        assert store.load_manifest(manifest.run_id).status == "failed"

    def test_completed_run_still_collects(self, store):
        self._run(store, "completed")
        stats = store.gc(days=0.0)
        assert (stats.runs, stats.protected) == (1, 0)
        assert store.list_runs() == []

    def test_checkpointed_artifacts_survive_with_their_run(self, store):
        kept_key = "ab" + "0" * 62
        doomed_key = "cd" + "0" * 62
        store.save_cell(kept_key, OUTCOME)
        store.save_cell(doomed_key, OUTCOME)
        self._run(store, "running", checkpoint_keys=[kept_key])
        stats = store.gc(days=0.0)
        assert stats.artifacts == 1  # only the unreferenced cell
        assert store.load_cell(kept_key) is not None
        assert store.load_cell(doomed_key) is None

    def test_completed_runs_do_not_pin_their_artifacts(self, store):
        key = "ab" + "0" * 62
        store.save_cell(key, OUTCOME)
        self._run(store, "completed", checkpoint_keys=[key])
        stats = store.gc(days=0.0)
        assert stats.artifacts == 1
        assert store.load_cell(key) is None

    def test_torn_checkpoint_line_is_tolerated(self, store):
        key = "ab" + "0" * 62
        store.save_cell(key, OUTCOME)
        manifest = self._run(store, "running", checkpoint_keys=[key])
        with open(store.checkpoint_path(manifest.run_id), "a") as handle:
            handle.write('{"kind": "cell", "key": "tr')  # killed mid-write
        stats = store.gc(days=0.0)
        assert store.load_cell(key) is not None
        assert stats.runs == 0

    def test_dry_run_reports_protection_without_touching_anything(self, store):
        self._run(store, "running")
        stats = store.gc(days=0.0, dry_run=True)
        assert stats.protected == 1
        assert store.list_runs()

"""Run-store identity for searched/parameterized codes (regression).

Two scheme *variants* sharing one registry name — e.g. different searched
Hsiao matrices both mounted as ``hsiao-v2`` across code revisions — must
never collide in the content-addressed store.  The fix threads each
scheme's :meth:`cache_token` (a digest of the full H-matrix construction)
into every cell key; these tests pin that behavior down at the key,
cache, and evaluator levels.
"""

import numpy as np

from repro.codes.hsiao import hsiao_search_code
from repro.core.binary import BinaryEntryScheme
from repro.errormodel.montecarlo import PatternOutcome, evaluate_scheme
from repro.errormodel.patterns import ErrorPattern
from repro.runs import CellCache, RunStore

OUTCOME = PatternOutcome(ErrorPattern.BEAT, 500, 0.8, 0.15, 0.05, False, 0.2)


def _variant(variant):
    """A searched SEC-DED scheme mounted under one shared registry name."""
    return BinaryEntryScheme(
        hsiao_search_code(variant=variant), interleaved=False,
        name="hsiao-v2", label="searched",
    )


class TestTokens:
    def test_variants_share_name_but_not_token(self):
        a, b = _variant(1), _variant(2)
        assert a.name == b.name
        assert not np.array_equal(a.code.h, b.code.h)
        assert a.cache_token() != b.cache_token()

    def test_token_is_deterministic(self):
        assert _variant(1).cache_token() == _variant(1).cache_token()


class TestKeys:
    def test_cell_keys_diverge_on_token(self):
        a, b = _variant(1), _variant(2)
        key_a = RunStore.cell_key("hsiao-v2", ErrorPattern.BEAT, 1000, 7,
                                  False, "fp", token=a.cache_token())
        key_b = RunStore.cell_key("hsiao-v2", ErrorPattern.BEAT, 1000, 7,
                                  False, "fp", token=b.cache_token())
        assert key_a != key_b

    def test_cache_lookup_misses_across_variants(self, tmp_path):
        a, b = _variant(1), _variant(2)
        cache = CellCache(RunStore(tmp_path / "store"), fingerprint="fp")
        cache.record("hsiao-v2", ErrorPattern.BEAT, 1000, 7, False, OUTCOME,
                     token=a.cache_token())
        assert cache.lookup("hsiao-v2", ErrorPattern.BEAT, 1000, 7, False,
                            token=a.cache_token()) == OUTCOME
        assert cache.lookup("hsiao-v2", ErrorPattern.BEAT, 1000, 7, False,
                            token=b.cache_token()) is None


class TestEvaluator:
    def test_variant_swap_never_reuses_cells(self, tmp_path):
        cache = CellCache(RunStore(tmp_path / "store"), fingerprint="fp")
        evaluate_scheme(_variant(1), samples=50, seed=3, cache=cache)
        assert cache.hits == 0
        misses = cache.misses
        # Same registry name, different H matrix: all seven cells recompute.
        evaluate_scheme(_variant(2), samples=50, seed=3, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2 * misses
        # The genuinely identical scheme, however, hits every cell.
        evaluate_scheme(_variant(1), samples=50, seed=3, cache=cache)
        assert cache.hits == misses

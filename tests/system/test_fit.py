"""Tests for FIT arithmetic."""

import pytest

from repro.system.fit import GpuMemoryModel, RateSplit


class TestGpuMemoryModel:
    def test_paper_raw_rate(self):
        # 12.51 FIT/Gbit x 320 Gbit (A100 40GB) = 4,003 FIT per GPU.
        assert GpuMemoryModel().raw_fit == pytest.approx(4003.2)

    def test_split_partitions_raw_rate(self):
        split = GpuMemoryModel().split(0.74, 0.206, 0.054)
        assert split.corrected + split.due + split.sdc == pytest.approx(split.raw)

    def test_paper_secded_sdc_fit(self):
        # The paper's 216 FIT: SEC-DED with 5.4% SDC probability.
        split = GpuMemoryModel().split(0.74, 0.206, 0.054)
        assert split.sdc == pytest.approx(216.2, rel=0.01)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GpuMemoryModel().split(0.5, 0.1, 0.1)

    def test_custom_capacity(self):
        v100 = GpuMemoryModel(memory_gbit=256.0)  # 32GB
        assert v100.raw_fit == pytest.approx(12.51 * 256)


class TestRateSplit:
    def test_mtbf(self):
        split = RateSplit(raw=1000.0, corrected=900.0, due=99.0, sdc=1.0)
        assert split.mtbf_hours(split.sdc) == pytest.approx(1e9)
        assert split.mtbf_hours(split.due) == pytest.approx(1e9 / 99)

    def test_zero_rate_is_infinite(self):
        split = RateSplit(raw=1.0, corrected=1.0, due=0.0, sdc=0.0)
        assert split.mtbf_hours(split.sdc) == float("inf")

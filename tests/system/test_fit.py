"""Tests for FIT arithmetic and the fleet-scale reliability model."""

import math
from types import SimpleNamespace

import pytest

from repro.system.fit import (
    FleetReliability,
    GpuFleetModel,
    GpuMemoryModel,
    RateSplit,
)


class TestGpuMemoryModel:
    def test_paper_raw_rate(self):
        # 12.51 FIT/Gbit x 320 Gbit (A100 40GB) = 4,003 FIT per GPU.
        assert GpuMemoryModel().raw_fit == pytest.approx(4003.2)

    def test_split_partitions_raw_rate(self):
        split = GpuMemoryModel().split(0.74, 0.206, 0.054)
        assert split.corrected + split.due + split.sdc == pytest.approx(split.raw)

    def test_paper_secded_sdc_fit(self):
        # The paper's 216 FIT: SEC-DED with 5.4% SDC probability.
        split = GpuMemoryModel().split(0.74, 0.206, 0.054)
        assert split.sdc == pytest.approx(216.2, rel=0.01)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GpuMemoryModel().split(0.5, 0.1, 0.1)

    def test_custom_capacity(self):
        v100 = GpuMemoryModel(memory_gbit=256.0)  # 32GB
        assert v100.raw_fit == pytest.approx(12.51 * 256)


class TestRateSplit:
    def test_mtbf(self):
        split = RateSplit(raw=1000.0, corrected=900.0, due=99.0, sdc=1.0)
        assert split.mtbf_hours(split.sdc) == pytest.approx(1e9)
        assert split.mtbf_hours(split.due) == pytest.approx(1e9 / 99)

    def test_zero_rate_is_infinite(self):
        split = RateSplit(raw=1.0, corrected=1.0, due=0.0, sdc=0.0)
        assert split.mtbf_hours(split.sdc) == float("inf")


class TestFleetReliability:
    def _split(self):
        return GpuMemoryModel().split(0.74, 0.206, 0.054)

    def test_fit_scales_linearly_with_devices(self):
        one = FleetReliability(devices=1, per_gpu=self._split())
        many = FleetReliability(devices=1000, per_gpu=self._split())
        assert many.sdc_fit == pytest.approx(1000 * one.sdc_fit)
        assert many.due_fit == pytest.approx(1000 * one.due_fit)
        assert many.mtbf_sdc_hours \
            == pytest.approx(one.mtbf_sdc_hours / 1000)

    def test_totals_partition_the_raw_rate(self):
        fleet = FleetReliability(devices=64, per_gpu=self._split())
        assert fleet.corrected_fit + fleet.due_fit + fleet.sdc_fit \
            == pytest.approx(fleet.raw_fit)

    def test_poisson_risk(self):
        fleet = FleetReliability(devices=100, per_gpu=self._split())
        expected = fleet.sdc_fit * 24.0 / 1e9
        assert fleet.expected_events(fleet.sdc_fit, 24.0) \
            == pytest.approx(expected)
        assert fleet.sdc_risk(24.0) \
            == pytest.approx(1.0 - math.exp(-expected))
        assert fleet.sdc_risk(0.0) == 0.0
        assert 0.0 < fleet.due_risk(24.0) < 1.0

    def test_risk_saturates_at_long_missions(self):
        fleet = FleetReliability(devices=100_000, per_gpu=self._split())
        assert fleet.sdc_risk(1e9) == pytest.approx(1.0)

    def test_zero_rate_never_fails(self):
        perfect = GpuMemoryModel().split(1.0, 0.0, 0.0)
        fleet = FleetReliability(devices=1000, per_gpu=perfect)
        assert fleet.mtbf_sdc_hours == float("inf")
        assert fleet.sdc_risk(1e9) == 0.0


class TestGpuFleetModel:
    def test_devices_validated(self):
        with pytest.raises(ValueError, match="at least one device"):
            GpuFleetModel(devices=0)

    def test_reliability_splits_by_outcome(self):
        outcome = SimpleNamespace(correct=0.74, detect=0.206, sdc=0.054)
        fleet = GpuFleetModel(devices=8).reliability(outcome)
        assert fleet.devices == 8
        assert fleet.raw_fit == pytest.approx(8 * GpuMemoryModel().raw_fit)
        # per-GPU 216 FIT of SDC (the paper's SEC-DED figure), x8
        assert fleet.sdc_fit == pytest.approx(8 * 216.2, rel=0.01)

    def test_from_table1_composes_with_the_error_model(self):
        from repro.core import get_scheme
        from repro.errormodel.montecarlo import TABLE1_PROBABILITIES

        fleet = GpuFleetModel(devices=1000).from_table1(
            get_scheme("trio"), dict(TABLE1_PROBABILITIES), samples=400)
        assert fleet.devices == 1000
        assert fleet.corrected_fit + fleet.due_fit + fleet.sdc_fit \
            == pytest.approx(fleet.raw_fit)
        assert fleet.sdc_fit < fleet.raw_fit * 0.01  # Trio: SDC is rare

"""Tests for the autonomous-vehicle safety model (Section 7.3)."""

import pytest

from repro.errormodel.montecarlo import SchemeOutcome
from repro.system.automotive import (
    ISO26262_SDC_FIT_LIMIT,
    FleetModel,
    assess_scheme,
)


def _outcome(name, correct, detect, sdc):
    return SchemeOutcome(
        scheme=name, label=name, correct=correct, detect=detect, sdc=sdc,
        per_pattern={},
    )


PAPER_SECDED = _outcome("secded", 0.7460, 0.2000, 0.0540)
PAPER_DUET = _outcome("duet", 0.80599, 0.19400, 1.3e-5)
PAPER_TRIO = _outcome("trio", 0.96992, 0.03000, 8.5e-5)


class TestFleetModel:
    def test_paper_driving_hours(self):
        # 225.8M drivers x 51 min/day = 1.92e8 hours/day.
        assert FleetModel().driving_hours_per_day == pytest.approx(1.92e8, rel=0.001)


class TestISO26262:
    def test_secded_fails(self):
        assessment = assess_scheme(PAPER_SECDED)
        assert not assessment.meets_iso26262
        assert assessment.sdc_fit == pytest.approx(216, rel=0.01)

    def test_trio_passes(self):
        assessment = assess_scheme(PAPER_TRIO)
        assert assessment.meets_iso26262
        # Paper: ~0.29 FIT (we use its published Fig-8 probabilities).
        assert assessment.sdc_fit == pytest.approx(0.34, rel=0.2)

    def test_duet_passes_comfortably(self):
        assessment = assess_scheme(PAPER_DUET)
        assert assessment.meets_iso26262
        assert assessment.sdc_fit < 0.1  # paper: 0.045 FIT

    def test_limit_value(self):
        assert ISO26262_SDC_FIT_LIMIT == 10.0


class TestFleetExposure:
    def test_secded_sdc_per_day_near_41(self):
        assessment = assess_scheme(PAPER_SECDED)
        assert assessment.fleet_sdc_per_day == pytest.approx(41.5, rel=0.05)

    def test_duet_due_cars_near_148(self):
        assessment = assess_scheme(PAPER_DUET)
        assert assessment.fleet_due_cars_per_day == pytest.approx(148, rel=0.05)

    def test_trio_due_cars_near_25(self):
        assessment = assess_scheme(PAPER_TRIO)
        assert assessment.fleet_due_cars_per_day == pytest.approx(25, rel=0.1)

    def test_days_between_fleet_sdc(self):
        trio = assess_scheme(PAPER_TRIO)
        duet = assess_scheme(PAPER_DUET)
        # Paper: one fleet SDC every ~18 days (Trio) / ~115 days (Duet).
        assert trio.days_between_fleet_sdc == pytest.approx(15.3, rel=0.25)
        assert duet.days_between_fleet_sdc > 80

    def test_zero_sdc_gives_infinite_interval(self):
        perfect = _outcome("perfect", 1.0, 0.0, 0.0)
        assert assess_scheme(perfect).days_between_fleet_sdc == float("inf")

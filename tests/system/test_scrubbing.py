"""Tests for the scrubbing / error-accumulation extension."""

import pytest

from repro.system.scrubbing import ScrubbingModel


@pytest.fixture(scope="module")
def model():
    return ScrubbingModel()


class TestRates:
    def test_event_rate_from_fit(self, model):
        # 4003 FIT -> ~4e-6 events per GPU-hour.
        assert model.events_per_hour == pytest.approx(4.0032e-6, rel=1e-3)

    def test_per_entry_rate_is_tiny(self, model):
        assert model.per_entry_rate < 1e-13

    def test_double_hits_quadratic_in_interval(self, model):
        one = model.expected_double_hit_entries(1.0)
        ten = model.expected_double_hit_entries(10.0)
        assert ten / one == pytest.approx(100.0, rel=0.01)

    def test_rate_linear_in_interval(self, model):
        assert (model.double_hit_rate_per_hour(10.0)
                / model.double_hit_rate_per_hour(1.0)
                == pytest.approx(10.0, rel=0.01))

    def test_invalid_interval(self, model):
        with pytest.raises(ValueError):
            model.expected_double_hit_entries(0.0)


class TestRecommendations:
    def test_recommended_interval_meets_target(self, model):
        for target in (0.01, 1.0, 10.0):
            interval = model.recommended_interval_hours(target)
            assert model.accumulation_fit(interval) <= target * 1.0001

    def test_interval_shrinks_with_stricter_target(self, model):
        strict = model.recommended_interval_hours(0.01)
        loose = model.recommended_interval_hours(10.0)
        assert strict < loose

    def test_terrestrial_rates_need_no_aggressive_scrubbing(self, model):
        """At field rates, even a daily scrub keeps accumulation far below
        1 FIT — why the per-event evaluation methodology is sound."""
        assert model.accumulation_fit(24.0) < 1e-3

    def test_invalid_target(self, model):
        with pytest.raises(ValueError):
            model.recommended_interval_hours(0.0)


class TestScaling:
    def test_broader_events_raise_risk(self):
        narrow = ScrubbingModel(mean_entries_per_event=1.0)
        broad = ScrubbingModel(mean_entries_per_event=10.0)
        assert (broad.accumulation_fit(24.0)
                > narrow.accumulation_fit(24.0))

    def test_beam_acceleration_changes_the_story(self):
        """In the beam (2.52e8x flux) accumulation *is* plausible — the
        reason the microbenchmark rewrites memory every few seconds."""
        from repro.system.fit import GpuMemoryModel

        beam = ScrubbingModel(
            gpu=GpuMemoryModel(fit_per_gbit=12.51 * 2.52e8)
        )
        # One hour in the beam without rewrites: accumulation is no longer
        # negligible relative to a single-event FIT budget.
        assert beam.accumulation_fit(1.0) > 1.0

"""Tests for the exascale HPC model against the paper's Figure 9 numbers.

The per-event probabilities below are the paper's own Figure-8 values, so
these tests check the *system model* against the published curve endpoints
independent of our Monte Carlo results.
"""

import pytest

from repro.errormodel.montecarlo import SchemeOutcome
from repro.system.hpc import ExascaleSystem, figure9_series


def _outcome(name, correct, detect, sdc):
    return SchemeOutcome(
        scheme=name, label=name, correct=correct, detect=detect, sdc=sdc,
        per_pattern={},
    )


# Figure 8, as published: SEC-DED 74/20/5.4; Duet ~80.6/19.4/0.0013%;
# Trio ~97/3/0.0085%.
PAPER_SECDED = _outcome("secded", 0.7460, 0.2000, 0.0540)
PAPER_DUET = _outcome("duet", 0.80599, 0.19400, 1.3e-5)
PAPER_TRIO = _outcome("trio", 0.96992, 0.03000, 8.5e-5)


@pytest.fixture(scope="module")
def system():
    return ExascaleSystem()


class TestFigure9Endpoints:
    def test_duet_mtti_at_half_exaflop(self, system):
        point = system.point(0.5, PAPER_DUET)
        assert point.mtti_hours == pytest.approx(6.3, rel=0.05)

    def test_duet_mtti_at_two_exaflops(self, system):
        point = system.point(2.0, PAPER_DUET)
        assert point.mtti_hours == pytest.approx(1.6, rel=0.05)

    def test_trio_mtti_range(self, system):
        low = system.point(2.0, PAPER_TRIO).mtti_hours
        high = system.point(0.5, PAPER_TRIO).mtti_hours
        assert low == pytest.approx(9.4, rel=0.1)
        assert high == pytest.approx(37.6, rel=0.1)

    def test_trio_mttf_in_months(self, system):
        months_small = system.point(0.5, PAPER_TRIO).mttf_months
        months_large = system.point(2.0, PAPER_TRIO).mttf_months
        # Paper: 5.7-22.6 months.
        assert months_large == pytest.approx(5.7, rel=0.15)
        assert months_small == pytest.approx(22.6, rel=0.15)

    def test_secded_sdc_every_22_hours(self, system):
        point = system.point(0.5, PAPER_SECDED)
        assert point.mttf_hours == pytest.approx(22.5, rel=0.05)

    def test_duet_mttf_in_years(self, system):
        point = system.point(0.5, PAPER_DUET)
        assert point.mttf_hours / 8766 > 5  # "SDC period in years"


class TestScaling:
    def test_rates_scale_inversely_with_machine_size(self, system):
        small = system.point(0.5, PAPER_TRIO)
        large = system.point(2.0, PAPER_TRIO)
        assert small.mtti_hours == pytest.approx(4 * large.mtti_hours, rel=0.01)
        assert small.mttf_hours == pytest.approx(4 * large.mttf_hours, rel=0.01)

    def test_gpu_count(self, system):
        assert system.gpu_count(1.0) == 409_600
        assert system.gpu_count(0.5) == 204_800

    def test_infinite_mttf_for_perfect_scheme(self, system):
        perfect = _outcome("perfect", 1.0, 0.0, 0.0)
        point = system.point(1.0, perfect)
        assert point.mtti_hours == float("inf")
        assert point.mttf_hours == float("inf")


class TestSeries:
    def test_series_structure(self):
        series = figure9_series(
            {"duet": PAPER_DUET, "trio": PAPER_TRIO},
            exaflops=(0.5, 1.0, 2.0),
        )
        assert set(series) == {"duet", "trio"}
        assert [p.exaflops for p in series["duet"]] == [0.5, 1.0, 2.0]

    def test_correction_sdc_tradeoff_visible(self):
        # The paper's headline: Trio wins MTTI, Duet wins MTTF.
        series = figure9_series({"duet": PAPER_DUET, "trio": PAPER_TRIO})
        for duet_point, trio_point in zip(series["duet"], series["trio"]):
            assert trio_point.mtti_hours > duet_point.mtti_hours
            assert duet_point.mttf_hours > trio_point.mttf_hours

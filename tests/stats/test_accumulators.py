"""Property suite for the streaming campaign accumulators.

Two contracts: the merge algebra (associative, commutative, identity —
any partition of an event stream, folded in any order, yields tallies
equal to one whole-stream fold) and oracle equivalence (``finalize``
must be *float-identical* to the materialized ``*_table`` statistics in
:mod:`repro.beam.postprocess`, seed for seed).
"""

import numpy as np
import pytest

from repro.beam.engine import run_statistics_campaign
from repro.beam.fliptable import FlipTable
from repro.beam.postprocess import (
    bits_per_word_histogram_table,
    breadth_class_fractions_table,
    byte_alignment_stats_table,
    derive_table1_table,
    mbme_breadth_histogram_table,
)
from repro.stats import STATS_KEYS, CampaignAccumulator

SEED = 41
EVENTS = 600


@pytest.fixture(scope="module")
def observed():
    """One materialized campaign's observed events — the test stream."""
    return run_statistics_campaign(EVENTS, seed=SEED).observed_events


def _fold(events) -> CampaignAccumulator:
    acc = CampaignAccumulator()
    acc.update_from_events(events)
    return acc


def _tallies(acc: CampaignAccumulator) -> dict:
    """The partition-invariant state (fold wall-clock excluded)."""
    state = dict(acc.state())
    state.pop("fold_ns")
    return state


class TestOracleEquivalence:
    def test_finalize_is_float_identical_to_the_tables(self, observed):
        table = FlipTable.from_observed_events(observed)
        final = _fold(observed).finalize()
        assert tuple(final) == STATS_KEYS
        assert final["class_fractions"] \
            == breadth_class_fractions_table(table)
        assert final["mbme_histogram"] == mbme_breadth_histogram_table(table)
        assert final["byte_alignment"] == byte_alignment_stats_table(table)
        assert final["bits_per_word_aligned"] \
            == bits_per_word_histogram_table(table, byte_aligned=True)
        assert final["bits_per_word_non_aligned"] \
            == bits_per_word_histogram_table(table, byte_aligned=False)
        assert final["table1"] == derive_table1_table(table)

    def test_observed_count_matches_the_stream(self, observed):
        assert _fold(observed).n_observed == len(observed)


class TestMergeAlgebra:
    @pytest.mark.parametrize("partition_seed", [0, 1, 2, 3])
    def test_any_partition_in_any_order(self, observed, partition_seed):
        rng = np.random.default_rng(partition_seed)
        k = int(rng.integers(2, 8))
        cuts = np.sort(rng.integers(0, len(observed) + 1, size=k - 1))
        bounds = [0, *cuts.tolist(), len(observed)]
        parts = [_fold(observed[lo:hi])
                 for lo, hi in zip(bounds[:-1], bounds[1:])]
        merged = CampaignAccumulator.empty()
        for index in rng.permutation(len(parts)):
            merged = merged.merge(parts[index])
        whole = _fold(observed)
        assert _tallies(merged) == _tallies(whole)
        assert merged.finalize() == whole.finalize()

    def test_associative(self, observed):
        third = len(observed) // 3
        a = _fold(observed[:third])
        b = _fold(observed[third:2 * third])
        c = _fold(observed[2 * third:])
        assert _tallies(a.merge(b).merge(c)) \
            == _tallies(a.merge(b.merge(c)))

    def test_commutative(self, observed):
        half = len(observed) // 2
        a, b = _fold(observed[:half]), _fold(observed[half:])
        assert a.merge(b).state() == b.merge(a).state()

    def test_empty_is_the_identity(self, observed):
        acc = _fold(observed)
        for merged in (acc.merge(CampaignAccumulator.empty()),
                       CampaignAccumulator.empty().merge(acc)):
            assert merged.state() == acc.state()


class TestStateTransport:
    def test_round_trip(self, observed):
        acc = _fold(observed)
        acc.add_raw(n_events=EVENTS, n_records=3 * len(observed))
        clone = CampaignAccumulator.from_state(acc.state())
        assert clone.state() == acc.state()
        assert clone.finalize() == acc.finalize()

    def test_state_is_plain_types(self, observed):
        import json

        assert json.loads(json.dumps(_fold(observed).state()))

    def test_version_gate(self):
        state = CampaignAccumulator().state()
        state["version"] = 99
        with pytest.raises(ValueError, match="state version"):
            CampaignAccumulator.from_state(state)


class TestFailureParity:
    """``finalize`` raises exactly where the oracles raise."""

    def test_no_observed_events(self):
        with pytest.raises(ValueError, match="no events to classify"):
            CampaignAccumulator().finalize()

    def test_no_multibit_events(self):
        acc = CampaignAccumulator()
        acc.n_observed = 5
        acc.class_counts = np.array([5, 0, 0, 0], dtype=np.int64)
        with pytest.raises(ValueError, match="no multi-bit events"):
            acc.finalize()


class TestThroughput:
    def test_zero_before_any_fold(self):
        assert CampaignAccumulator().events_per_second == 0.0

    def test_positive_after_a_fold(self, observed):
        acc = _fold(observed)
        acc.add_raw(n_events=EVENTS)
        assert acc.events_per_second > 0.0

"""Resume after a kill: a checkpoint cut at any byte offset must neither
crash ``--resume`` nor change a single byte of the final statistics."""

import json
import shutil

import pytest

from repro.cli import main
from repro.runs import RunStore
from repro.runs.session import read_checkpoint

ARGS = ["campaign", "--runs", "1", "--events", "200", "--seed", "3",
        "--heartbeat", "0"]


def _filtered(out: str) -> str:
    """Campaign output minus run-id-bearing bookkeeping lines."""
    return "\n".join(
        line for line in out.splitlines() if not line.startswith("[repro")
    )


def _campaign(root, *extra, capsys) -> str:
    assert main([*ARGS, "--runs-dir", str(root), *extra]) == 0
    return _filtered(capsys.readouterr().out)


@pytest.fixture(scope="module")
def clean(tmp_path_factory):
    """One clean reference run; its filtered stdout is the golden output."""
    root = tmp_path_factory.mktemp("clean") / "store"
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        assert main([*ARGS, "--runs-dir", str(root)]) == 0
    return _filtered(stdout.getvalue())


@pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
def test_resume_from_a_cut_checkpoint_is_bit_identical(
        tmp_path, capsys, clean, fraction):
    root = tmp_path / "store"
    _campaign(root, capsys=capsys)
    store = RunStore(root)
    (manifest,) = store.list_runs()

    # Simulate the kill the checkpoint protects against: cut its log at an
    # arbitrary byte offset, lose the campaign artifact mid-flight, and
    # leave the manifest in the ``running`` state an os._exit would.
    checkpoint = store.checkpoint_path(manifest.run_id)
    raw = checkpoint.read_bytes()
    assert raw  # the campaign recorded progress
    checkpoint.write_bytes(raw[: int(len(raw) * fraction)])
    shutil.rmtree(root / "campaigns")
    manifest_path = store.manifest_path(manifest.run_id)
    record = json.loads(manifest_path.read_text())
    record["status"] = "running"
    record["finished_at"] = None
    manifest_path.write_text(json.dumps(record))

    # The damaged log parses to a valid prefix plus at most one torn line.
    entries, torn = read_checkpoint(checkpoint)
    assert torn <= 1
    assert all(entry["kind"] == "campaign-run" for entry in entries)

    resumed_out = _campaign(root, "--resume", manifest.run_id, capsys=capsys)
    assert resumed_out == clean

    resumed = [m for m in store.list_runs()
               if m.resumed_from == manifest.run_id]
    assert len(resumed) == 1
    assert resumed[0].status == "completed"

    # ``repro runs show`` renders the damaged run instead of choking on it.
    assert main(["runs", "--runs-dir", str(root), "show",
                 manifest.run_id]) == 0
    capsys.readouterr()


def test_clean_rerun_matches_itself(tmp_path, capsys, clean):
    # Control: the comparison in the parametrized test is meaningful
    # because a clean run in a fresh store reproduces the golden output.
    assert _campaign(tmp_path / "store", capsys=capsys) == clean

"""Retry budgets, backoff schedules, and poison-job quarantine."""

import logging

import pytest

from repro.core.pool import (
    BrokenExecutor,
    PoisonedJobs,
    RetryPolicy,
    run_with_requeue,
)

JOBS = ["a", "b", "c"]

#: Deterministic policy for schedule assertions: no jitter, no cap bite.
FIXED = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                    backoff_max_s=10.0, jitter=0.0)


class _Future:
    def __init__(self, outcome):
        self.outcome = outcome

    def result(self, timeout=None):
        if isinstance(self.outcome, BaseException):
            raise self.outcome
        return self.outcome

    def cancel(self):
        pass


class _ScriptedPool:
    def __init__(self, outcome_for):
        self.outcome_for = outcome_for

    def submit(self, fn, job):
        return _Future(self.outcome_for(job))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _run(factory, *, jobs=JOBS, workers=4, retry=None, run_serial=None,
         sleep=None, jitter_draw=None, allow_poisoned=False):
    naps = []
    return (*run_with_requeue(
        jobs,
        key=lambda job: job,
        describe=lambda job: f"job {job}",
        submit=lambda pool, job: pool.submit(None, job),
        run_serial=run_serial or (lambda job: f"serial:{job}"),
        workers=workers,
        executor_factory=factory,
        noun="jobs",
        retry=retry or FIXED,
        allow_poisoned=allow_poisoned,
        sleep=sleep if sleep is not None else naps.append,
        jitter_draw=jitter_draw or (lambda: 0.0),
    ), naps)


class TestBackoffMath:
    def test_exponential_growth_with_a_cap(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0,
                             backoff_max_s=0.15, jitter=0.0)
        assert [policy.backoff_s(n) for n in (1, 2, 3, 4)] == \
            [0.05, 0.1, 0.15, 0.15]

    def test_jitter_subtracts_so_the_cap_holds(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_max_s=1.0,
                             jitter=0.25)
        assert policy.backoff_s(1, 0.0) == 1.0
        assert policy.backoff_s(1, 1.0) == 0.75
        assert all(policy.backoff_s(1, u / 10) <= 1.0 for u in range(10))


class TestWorkerExceptions:
    def test_pool_exception_is_requeued_then_completes_serially(self, caplog):
        def factory():
            return _ScriptedPool(
                lambda job: ValueError("boom") if job == "b"
                else f"pool:{job}")

        with caplog.at_level(logging.WARNING, logger="repro.core.pool"):
            results, report, _ = _run(factory)
        assert results["b"] == "serial:b"
        assert report.job_errors == 2  # one incident per pool attempt
        assert report.requeued_keys == {"b"}
        assert report.counters()["pool_job_errors"] == 2
        assert any("failed on the pool" in r.message for r in caplog.records)

    def test_backoff_slept_between_pool_attempts(self):
        def factory():
            return _ScriptedPool(
                lambda job: ValueError("boom") if job == "b"
                else f"pool:{job}")

        _, _, naps = _run(factory)
        # One backoff after pool attempt 1; none after the final attempt.
        assert naps == [0.1]

    def test_jitter_draw_shapes_the_delay(self):
        def factory():
            return _ScriptedPool(lambda job: ValueError("boom"))

        retry = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                            backoff_max_s=10.0, jitter=0.5)
        _, _, naps = _run(factory, retry=retry, jitter_draw=lambda: 1.0)
        assert naps[0] == pytest.approx(0.05)  # 0.1 * (1 - 0.5)


class TestPoisonJobs:
    @staticmethod
    def _always_broken(job):
        raise RuntimeError(f"cursed {job}")

    def test_exhausting_every_tier_raises_poisoned_jobs(self, caplog):
        def factory():
            return _ScriptedPool(
                lambda job: ValueError("boom") if job == "b"
                else f"pool:{job}")

        def serial(job):
            if job == "b":
                raise RuntimeError("cursed b")
            return f"serial:{job}"

        with caplog.at_level(logging.ERROR, logger="repro.core.pool"):
            with pytest.raises(PoisonedJobs) as excinfo:
                _run(factory, run_serial=serial)
        exc = excinfo.value
        assert exc.poisoned == {"b": "RuntimeError: cursed b"}
        assert exc.results == {"a": "pool:a", "c": "pool:c"}
        assert exc.report.poisoned == exc.poisoned
        assert "quarantined" in str(exc)
        assert any("poison job" in r.message for r in caplog.records)

    def test_allow_poisoned_returns_partial_results(self):
        def factory():
            return _ScriptedPool(
                lambda job: ValueError("boom") if job == "b"
                else f"pool:{job}")

        def serial(job):
            if job == "b":
                raise RuntimeError("cursed b")
            return f"serial:{job}"

        results, report, _ = _run(factory, run_serial=serial,
                                  allow_poisoned=True)
        assert "b" not in results
        assert report.counters()["pool_poisoned"] == 1
        assert report.poisoned["b"] == "RuntimeError: cursed b"

    def test_serial_retry_budget_is_honored(self):
        tries = []

        def factory():
            return _ScriptedPool(lambda job: ValueError("boom"))

        def serial(job):
            tries.append(job)
            raise RuntimeError(f"cursed {job}")

        retry = RetryPolicy(backoff_base_s=0.1, jitter=0.0,
                            serial_attempts=3)
        with pytest.raises(PoisonedJobs):
            _run(factory, retry=retry, run_serial=serial)
        assert tries == ["a"] * 3 + ["b"] * 3 + ["c"] * 3

    def test_serial_retry_recovers_without_quarantine(self):
        calls = {}

        def factory():
            return _ScriptedPool(lambda job: ValueError("boom"))

        def serial(job):
            calls[job] = calls.get(job, 0) + 1
            if calls[job] == 1:
                raise RuntimeError("transient")
            return f"serial:{job}"

        results, report, naps = _run(factory, run_serial=serial)
        assert results == {job: f"serial:{job}" for job in JOBS}
        assert report.poisoned == {}
        assert report.serial_completed == 3
        # 1 pool backoff + 3 serial first-retry backoffs at base delay.
        assert naps == [0.1, 0.1, 0.1, 0.1]

    def test_pure_serial_failure_still_propagates(self):
        with pytest.raises(RuntimeError, match="cursed"):
            _run(None, workers=None, run_serial=self._always_broken)

    def test_pool_start_failure_keeps_the_propagating_contract(self):
        def factory():
            raise OSError("no processes")

        with pytest.raises(RuntimeError, match="cursed"):
            _run(factory, run_serial=self._always_broken)


class TestBrokenPoolBackoff:
    def test_backoff_also_runs_between_broken_pool_attempts(self):
        def factory():
            return _ScriptedPool(lambda job: BrokenExecutor("dead"))

        results, report, naps = _run(factory)
        assert results == {job: f"serial:{job}" for job in JOBS}
        assert report.pool_breaks == 2
        assert naps == [0.1]

"""faultpoint() behavior: actions, gating, host suppression, counters."""

import os

import pytest

from repro import faults
from repro.faults import (
    FaultPlan,
    Incident,
    InjectedFault,
    faultpoint,
    unit_draw,
)


def _install(spec, **kwargs):
    return faults.install(FaultPlan.parse(spec, **kwargs), export_env=False)


class TestInactive:
    def test_noop_without_a_plan(self):
        faultpoint("store.save_cell.pre_rename")  # must not raise
        assert faults.incidents() == []
        assert faults.counters() == {}

    def test_noop_for_an_unregistered_point(self):
        _install("some.other.point")
        faultpoint("store.save_cell.pre_rename")
        assert faults.incidents() == []


class TestActions:
    def test_raise_mode_raises_injected_fault(self):
        _install("p.q:mode=raise")
        with pytest.raises(InjectedFault) as excinfo:
            faultpoint("p.q")
        assert excinfo.value.point == "p.q"
        assert faults.incidents() == [Incident("p.q", "raise", "injected")]

    def test_hang_mode_sleeps_then_continues(self, monkeypatch):
        naps = []
        monkeypatch.setattr(faults.points.time, "sleep", naps.append)
        _install("p.q:mode=hang,s=0.25")
        faultpoint("p.q")
        assert naps == [0.25]

    def test_corrupt_mode_flips_exactly_one_byte(self, tmp_path):
        target = tmp_path / "artifact.jsonl"
        original = b'{"k": 1}\n{"k": 2}\n'
        target.write_bytes(original)
        _install("p.q:mode=corrupt")
        faultpoint("p.q", path=target)
        mutated = target.read_bytes()
        assert mutated != original
        assert len(mutated) == len(original)
        assert sum(a != b for a, b in zip(mutated, original)) == 1

    def test_torn_then_raise_writes_a_strict_prefix(self, tmp_path):
        target = tmp_path / "out.jsonl"
        data = "x" * 100 + "\n"
        _install("p.q:mode=torn,then=raise")
        with pytest.raises(InjectedFault):
            faultpoint("p.q", path=target, data=data)
        written = target.read_bytes()
        assert 0 < len(written) < len(data)
        assert data.encode().startswith(written)

    def test_torn_prefix_length_is_deterministic(self, tmp_path):
        data = "y" * 256
        cuts = []
        for name in ("a", "b"):
            target = tmp_path / f"{name}.bin"
            faults.reset()
            _install("p.q:mode=torn,then=none", seed=11)
            faultpoint("p.q", path=target, data=data)
            cuts.append(len(target.read_bytes()))
        assert cuts[0] == cuts[1]  # same seed, same hit index -> same cut

    def test_torn_append_mode_preserves_existing_content(self, tmp_path):
        target = tmp_path / "checkpoint.jsonl"
        target.write_text('{"run": 0}\n')
        _install("p.q:mode=torn,then=none")
        faultpoint("p.q", path=target, data='{"run": 1}\n', append=True)
        text = target.read_text()
        assert text.startswith('{"run": 0}\n')
        assert len(text) > len('{"run": 0}\n')
        assert len(text) < len('{"run": 0}\n{"run": 1}\n')


class TestGating:
    def test_after_skips_early_hits(self):
        _install("p.q:after=2,times=inf")
        faultpoint("p.q")
        faultpoint("p.q")
        with pytest.raises(InjectedFault):
            faultpoint("p.q")

    def test_times_budget_caps_activations(self):
        _install("p.q:times=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faultpoint("p.q")
        faultpoint("p.q")  # budget exhausted -> silent
        assert len(faults.incidents()) == 2

    def test_times_budget_spans_processes_via_the_ledger(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        _install("p.q:times=1", ledger=ledger)
        with pytest.raises(InjectedFault):
            faultpoint("p.q")
        # A "restarted" process: fresh plan, same ledger -> budget spent.
        faults.reset()
        _install("p.q:times=1", ledger=ledger)
        faultpoint("p.q")
        assert faults.incidents() == []

    def test_probability_draw_is_deterministic(self):
        plan = _install("p.q:p=0.5,times=inf")
        fired = 0
        for _ in range(50):
            try:
                faultpoint("p.q")
            except InjectedFault:
                fired += 1
        expected = sum(
            unit_draw(plan.seed, "p.q", hit) < 0.5 for hit in range(1, 51))
        assert fired == expected
        assert 0 < fired < 50


class TestHostGate:
    def test_destructive_fault_suppressed_in_the_host(self):
        # host_pid defaults to os.getpid(): we ARE the host.
        _install("p.q:mode=exit,times=1")
        faultpoint("p.q")  # would have os._exit'ed a worker
        assert faults.incidents() == [Incident("p.q", "exit", "suppressed")]
        assert faults.counters() == {"fault.suppressed.p.q": 1}

    def test_suppression_does_not_consume_the_budget(self):
        plan = _install("p.q:mode=exit,times=1")
        faultpoint("p.q")
        faultpoint("p.q")
        assert plan.rule_for("p.q").fired == 0
        assert len(faults.incidents()) == 2

    def test_worker_pid_is_not_gated(self, tmp_path):
        # Claim the host is some other pid; then mode=exit would fire.
        # Use then-gated torn (non-destructive variants aren't gated at
        # all), so assert via a raise-mode stand-in: host gating only
        # applies to destructive modes in the first place.
        _install("p.q:mode=raise", host_pid=os.getpid() + 1)
        with pytest.raises(InjectedFault):
            faultpoint("p.q")

    def test_host_flag_opts_into_destruction(self, monkeypatch):
        died = []
        monkeypatch.setattr(faults.points, "_die", lambda: died.append(True))
        _install("p.q:mode=exit,host=1")
        faultpoint("p.q")
        assert died == [True]
        assert faults.incidents() == [Incident("p.q", "exit", "injected")]

    def test_exit_fires_outside_the_host(self, monkeypatch):
        died = []
        monkeypatch.setattr(faults.points, "_die", lambda: died.append(True))
        _install("p.q:mode=exit", host_pid=os.getpid() + 1)
        faultpoint("p.q")
        assert died == [True]


class TestCounters:
    def test_injected_counters_are_flat_and_sorted(self):
        _install("a.x:times=2;b.y:times=1")
        for point in ("a.x", "a.x", "b.y"):
            with pytest.raises(InjectedFault):
                faultpoint(point)
        assert faults.counters() == {"fault.a.x": 2, "fault.b.y": 1}

    def test_ledger_counts_survive_a_restart(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        _install("a.x:times=2", ledger=ledger)
        with pytest.raises(InjectedFault):
            faultpoint("a.x")
        # Restarted process: no local incidents, but the ledger remembers.
        faults.reset()
        _install("a.x:times=2", ledger=ledger)
        assert faults.counters() == {"fault.a.x": 1}

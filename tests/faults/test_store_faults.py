"""Crash-safety of the run store under injected faults, and quarantine."""

import json

import pytest

from repro import faults
from repro.errormodel.montecarlo import PatternOutcome
from repro.errormodel.patterns import ErrorPattern
from repro.faults import FaultPlan, InjectedFault
from repro.runs import RunSession, RunStore
from repro.runs.durable import durable_append_line, durable_write_text

OUTCOME = PatternOutcome(ErrorPattern.BEAT, 500, 0.8, 0.15, 0.05, False, 0.2)
KEY = "ab" * 32


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


def _install(spec, **kwargs):
    return faults.install(FaultPlan.parse(spec, **kwargs), export_env=False)


class TestAtomicSaves:
    def test_crash_before_rename_leaves_no_artifact(self, store):
        _install("store.save_cell.pre_rename:mode=raise")
        with pytest.raises(InjectedFault):
            store.save_cell(KEY, OUTCOME)
        assert not store.cell_path(KEY).exists()
        assert store.load_cell(KEY) is None  # a clean miss, not corruption

    def test_crash_before_rename_keeps_the_old_artifact(self, store):
        store.save_cell(KEY, OUTCOME)
        newer = PatternOutcome(ErrorPattern.BEAT, 900, 0.5, 0.3, 0.2,
                               False, 0.4)
        _install("store.save_cell.pre_rename:mode=raise")
        with pytest.raises(InjectedFault):
            store.save_cell(KEY, newer)
        loaded = store.load_cell(KEY)
        assert loaded is not None and loaded.events == 500  # old survives

    def test_torn_write_is_quarantined_on_load(self, store):
        # then=raise (not exit) so the test process survives the fault.
        _install("store.save_cell.pre_rename:mode=torn,then=raise")
        with pytest.raises(InjectedFault):
            store.save_cell(KEY, OUTCOME)
        faults.uninstall(scrub_env=False)
        # The torn prefix landed on the final path -> detected + moved.
        assert store.cell_path(KEY).exists()
        assert store.load_cell(KEY) is None
        assert store.quarantined == 1
        assert not store.cell_path(KEY).exists()
        assert list(store.quarantine_dir().iterdir())
        # The slot is reusable: a clean recompute round-trips.
        store.save_cell(KEY, OUTCOME)
        assert store.load_cell(KEY) == OUTCOME

    def test_campaign_save_honors_its_fault_point(self, store):
        _install("store.save_campaign.pre_rename:mode=raise")
        with pytest.raises(InjectedFault):
            store.save_campaign(KEY, {"meta": 1}, [{"r": 0}])
        assert not store.campaign_path(KEY).exists()


class TestQuarantine:
    def test_collision_suffixes_keep_every_corpse(self, store):
        for _ in range(3):
            path = store.cell_path(KEY)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("not an artifact\n")
            assert store.load_cell(KEY) is None
        names = sorted(p.name for p in store.quarantine_dir().iterdir())
        assert names == [f"{KEY}.jsonl", f"{KEY}.jsonl.1", f"{KEY}.jsonl.2"]
        assert store.quarantined == 3

    def test_gc_collects_the_quarantine_bucket(self, store):
        path = store.cell_path(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("garbage\n")
        store.load_cell(KEY)
        stats = store.gc(days=0)
        assert stats.artifacts == 1
        assert not list(store.quarantine_dir().iterdir())

    def test_session_finish_reports_quarantine_and_fault_counters(
            self, tmp_path):
        session = RunSession.begin("fig8", {}, root=tmp_path / "store")
        corrupt = session.store.cell_path(KEY)
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_text("garbage\n")
        _install("p.q:mode=raise")
        with pytest.raises(InjectedFault):
            faults.faultpoint("p.q")
        session.store.load_cell(KEY)
        session.finish()
        manifest = RunStore(tmp_path / "store").load_manifest(session.run_id)
        assert manifest.counters["artifacts_quarantined"] == 1
        assert manifest.counters["fault.p.q"] == 1


class TestDurablePrimitives:
    def test_write_text_round_trip(self, tmp_path):
        target = tmp_path / "nested" / "out.json"
        target.parent.mkdir()
        durable_write_text(target, '{"ok": true}\n')
        assert json.loads(target.read_text()) == {"ok": True}
        assert not list(target.parent.glob("*.tmp*"))  # temp cleaned up

    def test_append_line_adds_exactly_one_line(self, tmp_path):
        target = tmp_path / "log.jsonl"
        durable_append_line(target, '{"n": 1}')
        durable_append_line(target, '{"n": 2}\n')  # newline optional
        assert target.read_text() == '{"n": 1}\n{"n": 2}\n'

    def test_append_fault_point_fires_before_the_write(self, tmp_path):
        target = tmp_path / "log.jsonl"
        _install("checkpoint.torn_write:mode=raise")
        with pytest.raises(InjectedFault):
            durable_append_line(target, '{"n": 1}',
                                fault_point="checkpoint.torn_write")
        assert not target.exists()  # fault fired before any bytes landed

"""FaultPlan spec grammar, deterministic draws, budgets and the ledger."""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpecError, unit_draw


class TestSpecGrammar:
    def test_bare_point_defaults(self):
        plan = FaultPlan.parse("store.save_cell.pre_rename")
        rule = plan.rule_for("store.save_cell.pre_rename")
        assert (rule.mode, rule.p, rule.times, rule.after) == \
            ("raise", 1.0, 1, 0)

    def test_full_parameterization(self):
        plan = FaultPlan.parse(
            "pool.worker.crash:mode=exit,p=0.5,times=3,after=2,host=1;"
            "engine.chunk.hang:mode=hang,s=0.01;"
            "checkpoint.torn_write:mode=torn,then=raise",
        )
        crash = plan.rule_for("pool.worker.crash")
        assert (crash.mode, crash.p, crash.times, crash.after, crash.host) \
            == ("exit", 0.5, 3, 2, True)
        assert plan.rule_for("engine.chunk.hang").delay_s == 0.01
        assert plan.rule_for("checkpoint.torn_write").then == "raise"
        assert plan.rule_for("unknown.point") is None

    def test_times_inf_means_unbounded(self):
        plan = FaultPlan.parse("a.b:times=inf")
        assert plan.rule_for("a.b").times is None

    @pytest.mark.parametrize("spec", [
        "",
        ";;",
        "point:mode=nuke",
        "point:p=1.5",
        "point:times=0",
        "point:after=-1",
        "point:s=-0.1",
        "point:then=later",
        "point:bogus=1",
        "point:p",
        "point:p=",
        "a.b;a.b",  # duplicate point
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_destructive_classification(self):
        plan = FaultPlan.parse(
            "a:mode=exit;b:mode=torn;c:mode=torn,then=raise;d:mode=raise")
        assert plan.rule_for("a").destructive()
        assert plan.rule_for("b").destructive()  # torn defaults then=exit
        assert not plan.rule_for("c").destructive()
        assert not plan.rule_for("d").destructive()


class TestDeterminism:
    def test_unit_draw_is_a_pure_function(self):
        assert unit_draw(7, "pool.worker.crash", 3) == \
            unit_draw(7, "pool.worker.crash", 3)
        assert 0.0 <= unit_draw(7, "pool.worker.crash", 3) < 1.0

    def test_unit_draw_varies_with_every_input(self):
        base = unit_draw(7, "a", 1)
        assert unit_draw(8, "a", 1) != base
        assert unit_draw(7, "b", 1) != base
        assert unit_draw(7, "a", 2) != base


class TestEnvironmentRoundTrip:
    def test_environ_rebuilds_the_identical_plan(self, tmp_path):
        plan = FaultPlan.parse(
            "pool.worker.crash:mode=exit,times=2", seed=42,
            ledger=tmp_path / "ledger.jsonl", host_pid=1234,
        )
        rebuilt = FaultPlan.from_env(plan.environ())
        assert rebuilt.spec == plan.spec
        assert rebuilt.seed == 42
        assert rebuilt.ledger == plan.ledger
        assert rebuilt.host_pid == 1234
        assert rebuilt.rule_for("pool.worker.crash").times == 2

    def test_from_env_is_none_without_a_spec(self):
        assert FaultPlan.from_env({}) is None

    def test_install_exports_and_uninstall_scrubs(self, tmp_path):
        import os

        plan = FaultPlan.parse("a.b", ledger=tmp_path / "ledger.jsonl")
        faults.install(plan)
        assert os.environ[faults.ENV_SPEC] == "a.b"
        assert os.environ[faults.ENV_LEDGER] == str(tmp_path / "ledger.jsonl")
        assert faults.active_plan() is plan
        faults.uninstall()
        assert faults.ENV_SPEC not in os.environ
        assert faults.active_plan() is None

    def test_active_plan_resolves_the_environment_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_SPEC, "x.y:mode=hang,s=0")
        monkeypatch.setenv(faults.ENV_SEED, "9")
        faults.reset()
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 9
        assert faults.active_plan() is plan  # resolved exactly once


class TestLedger:
    def test_counts_accumulate_across_plan_instances(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        first = FaultPlan.parse("a.b:times=2", ledger=ledger)
        first.ledger_record("a.b")
        # A "restarted process" builds a fresh plan over the same file.
        second = FaultPlan.parse("a.b:times=2", ledger=ledger)
        second.ledger_record("a.b")
        assert second.ledger_count("a.b") == 2
        assert first.ledger_counts() == {"a.b": 2}

    def test_torn_final_line_is_skipped(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        plan = FaultPlan.parse("a.b", ledger=ledger)
        plan.ledger_record("a.b")
        with open(ledger, "a") as handle:
            handle.write('{"point": "a.')  # killed mid-append
        assert plan.ledger_counts() == {"a.b": 1}

    def test_no_ledger_is_a_noop(self):
        plan = FaultPlan.parse("a.b")
        plan.ledger_record("a.b")
        assert plan.ledger_counts() == {}

"""The chaos harness end to end: a seeded fault schedule over a real
campaign must recover, account for every incident, and reproduce the
clean run's statistics byte for byte."""

import argparse

import pytest

from repro.faults.chaos import (
    DEFAULT_SPEC,
    cmd_chaos,
    run_chaos,
    run_chaos_serve_kill,
)


def _args(**overrides) -> argparse.Namespace:
    base = dict(
        events=1200, runs=1, seed=2021, workers=2, engine="columnar",
        inject_faults=DEFAULT_SPEC, faults_seed=7, max_restarts=8,
        chunk_timeout=None, keep=False, serve=False, kill_daemon=False,
    )
    base.update(overrides)
    return argparse.Namespace(**base)


def test_bad_spec_fails_fast_without_running_anything(capsys):
    assert run_chaos(_args(inject_faults="point:mode=nuke")) == 2
    out = capsys.readouterr().out
    assert "bad fault spec" in out
    assert "scratch dir" not in out  # rejected before any campaign ran


@pytest.mark.slow
def test_default_schedule_recovers_bit_identically():
    lines = []
    assert run_chaos(_args(), out=lines.append) == 0
    report = "\n".join(lines)
    assert "PASS" in report
    assert "restart" in report
    assert "injected incidents (ledger):" in report
    # The stock schedule kills the host twice (torn campaign artifact and
    # torn checkpoint, both host=1), so recovery requires real restarts.
    assert any("campaign killed" in line for line in lines)


@pytest.mark.slow
def test_shm_arena_leak_is_reclaimed_on_resume():
    # shm.arena.create with host=1 kills the coordinator right after the
    # shared-memory segment exists — a deliberate leak.  The --resume
    # recovery must reclaim it (run_chaos fails on any surviving
    # repro-shm segment) and still end bit-identical to the clean run.
    lines = []
    spec = ("pool.worker.crash:mode=exit,times=1;"
            "shm.arena.create:mode=exit,host=1,times=1")
    assert run_chaos(
        _args(engine="shm", inject_faults=spec), out=lines.append) == 0
    report = "\n".join(lines)
    assert "PASS" in report
    assert "shm.arena.create: 1" in report
    assert any("campaign killed" in line for line in lines)
    assert "statistics bit-identical to the clean run" in report


def test_kill_daemon_dispatch_fails_fast_on_a_bad_spec(capsys):
    # --kill-daemon routes to the SIGKILL leg, which validates the spec
    # before spawning any daemon or campaign.
    args = _args(inject_faults="point:mode=nuke", kill_daemon=True)
    assert cmd_chaos(args) == 2
    out = capsys.readouterr().out
    assert "bad fault spec" in out
    assert "scratch dir" not in out


@pytest.mark.slow
def test_daemon_sigkill_recovers_through_the_journal():
    # SIGKILL with one job held mid-run (hang fault), one queued, and a
    # deduplicated attach recorded.  The restarted daemon must replay its
    # journal: both jobs requeued, dedupe preserved across the crash,
    # byte-identical statistics, and no duplicate computation.
    lines = []
    assert run_chaos_serve_kill(_args(), out=lines.append) == 0
    report = "\n".join(lines)
    assert "PASS" in report
    assert "sending SIGKILL" in report
    assert "journal replay after restart" in report
    assert "compacted journal" in report


@pytest.mark.slow
def test_raise_only_schedule_needs_no_restarts():
    # A non-destructive schedule (worker-side raise) recovers within one
    # invocation via the pool's requeue path: 0 restarts, same verdict.
    lines = []
    spec = "pool.worker.crash:mode=raise,times=2"
    assert run_chaos(_args(inject_faults=spec), out=lines.append) == 0
    report = "\n".join(lines)
    assert "PASS" in report
    assert "0 restart(s)" in report
    assert "fault(s) across 1 point(s)" in report

"""Shared fixtures: every faults test runs with a clean injection state."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """No plan active, no incidents, no inherited fault environment —
    before and after every test in this package."""
    for var in (faults.ENV_SPEC, faults.ENV_SEED, faults.ENV_LEDGER,
                faults.ENV_HOST_PID):
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    yield
    faults.uninstall(scrub_env=False)
    faults.reset()

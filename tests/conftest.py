"""Suite-wide fixtures."""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_store(tmp_path_factory):
    """Point the run store at a per-session temp dir.

    The CLI caches results by default, so without this every CLI test
    would write artifacts into the developer's real ``~/.cache/repro-runs``
    (and could read stale ones back out of it).
    """
    prior = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(tmp_path_factory.mktemp("repro-runs"))
    yield
    if prior is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = prior

"""Tests for the SEU event generator."""

import numpy as np
import pytest

from repro.beam.events import (
    BITS_PER_WORD,
    EventClass,
    EventParameters,
    SoftErrorEventGenerator,
)


@pytest.fixture(scope="module")
def generator():
    return SoftErrorEventGenerator(seed=1)


def _events(generator, count=2000):
    return [generator.generate_event(float(i)) for i in range(count)]


class TestParameters:
    def test_class_probabilities_validated(self):
        with pytest.raises(ValueError):
            EventParameters(class_probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_words_dists_validated(self):
        with pytest.raises(ValueError):
            EventParameters(byte_aligned_words_dist=(1.0, 1.0, 0.0, 0.0))

    def test_defaults_match_figure_4a(self):
        params = EventParameters()
        assert params.class_probabilities[0] == 0.65  # SBSE
        assert params.class_probabilities[3] == 0.28  # MBME
        assert params.byte_aligned_fraction == 0.746


class TestEventStructure:
    def test_flips_in_data_range(self, generator):
        for event in _events(generator, 300):
            for positions in event.flips.values():
                assert positions.min() >= 0
                assert positions.max() < 256

    def test_flips_sorted_unique(self, generator):
        for event in _events(generator, 300):
            for positions in event.flips.values():
                as_list = positions.tolist()
                assert as_list == sorted(set(as_list))

    def test_sbse_is_one_bit_one_entry(self):
        generator = SoftErrorEventGenerator(seed=2)
        for _ in range(200):
            event = generator.generate_event(0.0)
            if event.event_class is EventClass.SBSE:
                assert event.breadth == 1
                assert event.total_bits == 1

    def test_sbme_same_bit_across_entries(self):
        generator = SoftErrorEventGenerator(seed=3)
        seen = 0
        for _ in range(3000):
            event = generator.generate_event(0.0)
            if event.event_class is EventClass.SBME:
                seen += 1
                bits = {tuple(p.tolist()) for p in event.flips.values()}
                assert len(bits) == 1  # the same cell column everywhere
                assert event.breadth >= 2
        assert seen > 5

    def test_mbme_entries_contiguous(self):
        generator = SoftErrorEventGenerator(seed=4)
        for _ in range(500):
            event = generator.generate_event(0.0)
            if event.event_class is EventClass.MBME:
                entries = sorted(event.flips)
                assert entries == list(range(entries[0], entries[0] + len(entries)))

    def test_multi_entry_events_bank_local(self):
        """Logic faults are confined to one bank (Section 5's attribution)."""
        from repro.dram.geometry import HBM2Geometry

        geometry = HBM2Geometry.for_gpu(32)
        generator = SoftErrorEventGenerator(geometry, seed=12)
        per_bank = geometry.entries_per_bank
        for _ in range(400):
            event = generator.generate_event(0.0)
            if event.breadth > 1:
                banks = {entry // per_bank for entry in event.flips}
                assert len(banks) == 1

    def test_byte_aligned_events_confined_to_byte_columns(self):
        params = EventParameters(byte_aligned_fraction=1.0,
                                 pin_fault_fraction=0.0,
                                 inversion_fraction=0.0)
        generator = SoftErrorEventGenerator(parameters=params, seed=5)
        for _ in range(300):
            event = generator.generate_event(0.0)
            if event.event_class not in (EventClass.MBSE, EventClass.MBME):
                continue
            for positions in event.flips.values():
                byte_columns = {(int(p) % BITS_PER_WORD) // 8 for p in positions}
                assert len(byte_columns) == 1  # one mat per event


class TestStatistics:
    def test_class_mixture_close_to_figure_4a(self, generator):
        events = _events(generator, 4000)
        counts = {klass: 0 for klass in EventClass}
        for event in events:
            counts[event.event_class] += 1
        assert counts[EventClass.SBSE] / 4000 == pytest.approx(0.65, abs=0.03)
        assert counts[EventClass.MBME] / 4000 == pytest.approx(0.28, abs=0.03)

    def test_breadth_long_tailed(self, generator):
        events = _events(generator, 4000)
        breadths = [e.breadth for e in events if e.event_class is EventClass.MBME]
        assert max(breadths) > 100  # tail reaches broad events
        assert min(breadths) >= 2
        assert max(breadths) <= 6000

    def test_poisson_arrivals_within_window(self):
        generator = SoftErrorEventGenerator(
            parameters=EventParameters(mean_time_to_event_s=1.0), seed=6
        )
        events = generator.events_in(100.0, start_time_s=50.0)
        assert len(events) > 50
        for event in events:
            assert 50.0 <= event.time_s < 150.0

    def test_pin_faults_exist(self):
        params = EventParameters(pin_fault_fraction=1.0,
                                 class_probabilities=(0.0, 0.0, 1.0, 0.0))
        generator = SoftErrorEventGenerator(parameters=params, seed=7)
        event = generator.generate_event(0.0)
        positions = next(iter(event.flips.values()))
        within_word = {int(p) % BITS_PER_WORD for p in positions}
        assert len(within_word) == 1  # same wire every beat
        assert 2 <= positions.size <= 4

    def test_determinism(self):
        first = SoftErrorEventGenerator(seed=11).generate_event(0.0)
        second = SoftErrorEventGenerator(seed=11).generate_event(0.0)
        assert first.event_class == second.event_class
        assert sorted(first.flips) == sorted(second.flips)


class TestUtilizationScaling:
    """Section 5's utilization experiment: logic errors follow accesses,
    array errors follow exposure time."""

    @staticmethod
    def _counts(utilization, seed=30, duration=30_000.0):
        generator = SoftErrorEventGenerator(seed=seed)
        events = generator.events_in(duration, utilization=utilization)
        multi = sum(
            1 for event in events
            if event.event_class in (EventClass.MBSE, EventClass.MBME)
        )
        return len(events) - multi, multi

    def test_zero_utilization_has_no_logic_errors(self):
        single, multi = self._counts(0.0)
        assert multi == 0
        assert single > 100

    def test_array_rate_independent_of_utilization(self):
        low_single, _ = self._counts(0.1, seed=31)
        high_single, _ = self._counts(1.0, seed=32)
        assert abs(low_single - high_single) / high_single < 0.15

    def test_logic_rate_scales_with_utilization(self):
        _, low_multi = self._counts(0.25, seed=33)
        _, high_multi = self._counts(1.0, seed=34)
        assert 2.5 < high_multi / low_multi < 6.0  # ~4x expected

    def test_invalid_utilization_rejected(self):
        generator = SoftErrorEventGenerator(seed=35)
        with pytest.raises(ValueError):
            generator.events_in(10.0, utilization=1.5)

    def test_default_matches_full_utilization_mixture(self):
        generator = SoftErrorEventGenerator(seed=36)
        events = generator.events_in(50_000.0, utilization=1.0)
        multi = sum(
            1 for event in events
            if event.event_class in (EventClass.MBSE, EventClass.MBME)
        )
        assert multi / len(events) == pytest.approx(0.33, abs=0.04)

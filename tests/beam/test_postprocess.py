"""Tests for intermittent filtering, event grouping and statistics."""

import numpy as np
import pytest

from repro.beam.events import EventClass, EventParameters, SoftErrorEventGenerator
from repro.beam.microbenchmark import MismatchRecord
from repro.beam.postprocess import (
    ObservedEvent,
    bits_per_word_histogram,
    breadth_class_fractions,
    byte_alignment_stats,
    derive_table1,
    events_from_truth,
    filter_intermittent,
    group_events,
    mbme_breadth_histogram,
)
from repro.errormodel.patterns import ErrorPattern


def _record(entry, cycle, read_pass=0, run=0, bits=(0,), time=None):
    return MismatchRecord(
        time_s=time if time is not None else float(cycle * 100 + read_pass),
        run=run,
        pattern="all0",
        write_cycle=cycle,
        read_pass=read_pass,
        inverted=cycle % 2 == 1,
        entry_index=entry,
        bit_positions=tuple(bits),
    )


class TestIntermittentFilter:
    def test_recurring_entry_is_damaged(self):
        records = [
            _record(5, cycle=0), _record(5, cycle=2), _record(5, cycle=4),
            _record(9, cycle=1, bits=(3, 4)),
        ]
        result = filter_intermittent(records)
        assert result.damaged_entries == {5}
        assert [r.entry_index for r in result.soft_records] == [9]
        assert len(result.intermittent_records) == 3

    def test_soft_error_persisting_within_cycle_not_damaged(self):
        # Same cycle, many read passes: one write cycle only -> soft.
        records = [_record(5, cycle=1, read_pass=p) for p in range(10)]
        result = filter_intermittent(records)
        assert result.damaged_entries == frozenset()
        assert len(result.soft_records) == 10

    def test_cross_run_recurrence_is_damaged(self):
        records = [_record(5, cycle=0, run=0), _record(5, cycle=0, run=1)]
        result = filter_intermittent(records)
        assert result.damaged_entries == {5}

    def test_threshold_configurable(self):
        records = [_record(5, cycle=0), _record(5, cycle=1)]
        strict = filter_intermittent(records, min_cycles=3)
        assert strict.damaged_entries == frozenset()


class TestEventGrouping:
    def test_groups_by_first_observation(self):
        records = [
            _record(1, cycle=0, read_pass=2, bits=(0,)),
            _record(2, cycle=0, read_pass=2, bits=(1,)),
            # re-observations of entry 1 in later passes:
            _record(1, cycle=0, read_pass=3, bits=(0,)),
            _record(1, cycle=0, read_pass=4, bits=(0,)),
            # a separate event in another pass:
            _record(3, cycle=0, read_pass=7, bits=(5, 6)),
        ]
        events = group_events(records)
        assert len(events) == 2
        first, second = events
        assert set(first.flips) == {1, 2}
        assert second.flips == {3: (5, 6)}

    def test_event_class_derivation(self):
        sbse = ObservedEvent(0, 0, 0, {1: (5,)})
        sbme = ObservedEvent(0, 0, 0, {1: (5,), 2: (5,)})
        mbse = ObservedEvent(0, 0, 0, {1: (5, 6)})
        mbme = ObservedEvent(0, 0, 0, {1: (5, 6), 2: (5, 6)})
        assert sbse.event_class() is EventClass.SBSE
        assert sbme.event_class() is EventClass.SBME
        assert mbse.event_class() is EventClass.MBSE
        assert mbme.event_class() is EventClass.MBME

    def test_byte_alignment_detection(self):
        aligned = ObservedEvent(0, 0, 0, {1: (8, 9, 15)})  # byte 1 of word 0
        crossing = ObservedEvent(0, 0, 0, {1: (7, 8)})  # spans bytes 0 and 1
        assert aligned.is_byte_aligned()
        assert not crossing.is_byte_aligned()

    def test_multi_word_byte_alignment(self):
        # Byte 2 of word 0 and byte 5 of word 2: aligned per word.
        event = ObservedEvent(0, 0, 0, {1: (16, 17, 128 + 40, 128 + 41)})
        assert event.is_byte_aligned()


class TestStatistics:
    @pytest.fixture(scope="class")
    def observed(self):
        generator = SoftErrorEventGenerator(seed=20)
        return events_from_truth(
            [generator.generate_event(float(i)) for i in range(3000)]
        )

    def test_class_fractions_match_generator(self, observed):
        fractions = breadth_class_fractions(observed)
        assert fractions[EventClass.SBSE] == pytest.approx(0.65, abs=0.04)
        assert fractions[EventClass.MBME] == pytest.approx(0.28, abs=0.04)
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_byte_alignment_near_paper(self, observed):
        stats = byte_alignment_stats(observed)
        assert stats["byte_aligned_fraction"] == pytest.approx(0.746, abs=0.06)

    def test_words_per_entry_shape(self, observed):
        stats = byte_alignment_stats(observed)
        # Byte-aligned errors: mostly 1 word; non-aligned: mostly 4 words.
        assert stats["aligned_words_1"] > 0.7
        assert stats["non_aligned_words_4"] > 0.5

    def test_bits_per_word_histograms(self, observed):
        aligned = bits_per_word_histogram(observed, byte_aligned=True)
        assert max(aligned) <= 8
        assert abs(sum(aligned.values()) - 1.0) < 1e-9
        # The ~15% inversion anomaly shows as a bump at exactly 8 bits.
        assert aligned[8] > 0.08
        non_aligned = bits_per_word_histogram(observed, byte_aligned=False)
        assert max(non_aligned) > 8

    def test_mbme_breadth_histogram(self, observed):
        histogram = mbme_breadth_histogram(observed)
        assert histogram["2-3"] > histogram["16-31"]
        total = sum(histogram.values())
        mbme = sum(
            1 for e in observed if e.event_class() is EventClass.MBME
        )
        assert total == mbme

    def test_table1_derivation(self, observed):
        table = derive_table1(observed)
        assert abs(sum(table.values()) - 1.0) < 1e-9
        assert table[ErrorPattern.BIT] > 0.5
        assert table[ErrorPattern.BYTE] > 0.1
        assert table[ErrorPattern.BIT] > table[ErrorPattern.BYTE]

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            breadth_class_fractions([])
        with pytest.raises(ValueError):
            derive_table1([])
        with pytest.raises(ValueError):
            byte_alignment_stats(
                [ObservedEvent(0, 0, 0, {1: (5,)})]  # no multi-bit events
            )

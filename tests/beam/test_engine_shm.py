"""The fused shared-memory engine and its zero-copy transport.

Three contracts, in test-class order: the seed-for-seed equivalence
matrix (``shm`` vs ``columnar`` vs ``reference`` — statistics byte
identical, traces structurally comparable); the arena transport itself
(round trip, checksum verification, overflow fallback, orphan reclaim,
lifecycle hygiene); and recovery (a worker killed mid-range must not
change the statistics or leave a ``/dev/shm`` segment behind).
"""

import logging
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import faults
from repro.beam import engine
from repro.beam.engine import run_statistics_campaign
from repro.beam.events import _inverse_permutations
from repro.core.shm import (
    PREFIX,
    ShmArena,
    cleanup_stale,
    orphaned_segments,
    read_columns,
    write_columns,
)
from repro.faults import FaultPlan

SEED = 41
EVENTS = 600
CHUNK = 97  # deliberately not a divisor: last chunk is a short one


def _segments() -> list[str]:
    """Every live repro arena segment, orphaned or not."""
    try:
        return sorted(e for e in os.listdir("/dev/shm")
                      if e.startswith(PREFIX + "-"))
    except OSError:  # pragma: no cover - no /dev/shm on this platform
        return []


def _assert_stats_identical(a, b):
    assert a.n_records == b.n_records
    assert a.n_observed == b.n_observed
    assert a.class_fractions == b.class_fractions
    assert a.mbme_histogram == b.mbme_histogram
    assert a.byte_alignment == b.byte_alignment
    assert a.bits_per_word_aligned == b.bits_per_word_aligned
    assert a.bits_per_word_non_aligned == b.bits_per_word_non_aligned
    assert a.table1 == b.table1
    assert a.observed_events == b.observed_events


@pytest.fixture(scope="module")
def matrix():
    """One campaign per engine, same seed/chunking."""
    return {
        name: run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine=name)
        for name in engine.ENGINES
    }


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("other", ["columnar", "reference"])
    def test_statistics_byte_identical(self, matrix, other):
        _assert_stats_identical(matrix["shm"], matrix[other])

    def test_traces_structurally_equal(self, matrix):
        """Same stage-span vocabulary in every engine, one campaign and
        one postprocess span each — so per-stage events_per_second stays
        comparable across engines even though shm fuses dispatch."""
        names = {name: {r.name for r in result.trace}
                 for name, result in matrix.items()}
        assert names["shm"] == names["columnar"] == names["reference"] == {
            "campaign", "chunk", "synthesize", "scan", "postprocess"}
        for result in matrix.values():
            spans = [r.name for r in result.trace]
            assert spans.count("campaign") == 1
            assert spans.count("postprocess") == 1
            assert set(result.stage_seconds) == set(engine._STAGES)

    def test_shm_fuses_chunks_into_ranges(self, matrix):
        n_chunks = -(-EVENTS // CHUNK)
        chunk_spans = [r for r in matrix["shm"].trace if r.name == "chunk"]
        assert len(chunk_spans) < n_chunks  # genuinely fused...
        assert sum(r.attrs["chunks"] for r in chunk_spans) == n_chunks
        columnar = [r for r in matrix["columnar"].trace
                    if r.name == "chunk"]
        assert len(columnar) == n_chunks  # ...while columnar is per-chunk

    def test_range_partition_is_statistics_invariant(self, matrix):
        for range_chunks in (1, 3, 64):
            repartitioned = run_statistics_campaign(
                EVENTS, seed=SEED, chunk=CHUNK, engine="shm",
                range_chunks=range_chunks)
            _assert_stats_identical(repartitioned, matrix["shm"])


@pytest.mark.slow
class TestPooledShm:
    def test_pooled_matches_serial_and_leaves_no_segments(self, matrix):
        before = _segments()
        pooled = run_statistics_campaign(
            1200, seed=SEED, chunk=100, engine="shm", workers=2,
            range_chunks=3)
        serial = run_statistics_campaign(
            1200, seed=SEED, chunk=100, engine="shm")
        _assert_stats_identical(pooled, serial)
        assert pooled.pool_counters.get("pool_completed") == 4  # 12/3 ranges
        assert _segments() == before  # arena unlinked on the way out

    def test_killed_worker_recovers_bit_identically(self):
        """kill -9 a worker mid-range: the campaign must requeue, finish
        with byte-identical statistics, and unlink the arena."""
        before = _segments()
        clean = run_statistics_campaign(
            1200, seed=SEED, chunk=100, engine="shm")
        faults.install(
            FaultPlan.parse("pool.worker.crash:mode=exit,times=1"),
            export_env=True)
        try:
            crashed = run_statistics_campaign(
                1200, seed=SEED, chunk=100, engine="shm", workers=2,
                range_chunks=3)
        finally:
            faults.uninstall()
            faults.reset()
        _assert_stats_identical(crashed, clean)
        assert crashed.pool_counters.get("pool_breaks", 0) >= 1
        assert _segments() == before
        assert orphaned_segments() == []


class _DoneFuture:
    def __init__(self, value):
        self.value = value

    def result(self, timeout=None):
        return self.value

    def cancel(self):
        pass


class _InlinePool:
    """Executes submissions in-process: the real transport code path
    (arena slices, descriptors) without multi-process variance."""

    def __init__(self, max_workers=None, initializer=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _DoneFuture(fn(*args, **kwargs))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestTransportFallbacks:
    def test_descriptor_transport_matches_serial(self, monkeypatch, matrix):
        monkeypatch.setattr(engine, "ProcessPoolExecutor", _InlinePool)
        pooled = run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine="shm", workers=4,
            range_chunks=2)
        _assert_stats_identical(pooled, matrix["shm"])

    def test_arena_unavailable_degrades_to_pickles(self, monkeypatch,
                                                   caplog, matrix):
        def _no_arena(nbytes, **kwargs):
            raise OSError("shm exhausted")

        monkeypatch.setattr(engine, "ShmArena", _no_arena)
        monkeypatch.setattr(engine, "ProcessPoolExecutor", _InlinePool)
        with caplog.at_level(logging.WARNING, logger="repro.beam.engine"):
            pooled = run_statistics_campaign(
                EVENTS, seed=SEED, chunk=CHUNK, engine="shm", workers=4,
                range_chunks=2)
        _assert_stats_identical(pooled, matrix["shm"])
        assert any("arena unavailable" in r.message for r in caplog.records)

    def test_outgrown_slice_degrades_to_pickles(self, monkeypatch, matrix):
        # Slices sized for ~no events: every write_columns overflows and
        # the workers fall back to returning the columns inline.
        monkeypatch.setattr(engine, "_SHM_BYTES_PER_EVENT", 1)
        monkeypatch.setattr(engine, "_SHM_JOB_HEADROOM", 0)
        monkeypatch.setattr(engine, "ProcessPoolExecutor", _InlinePool)
        before = _segments()
        pooled = run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine="shm", workers=4,
            range_chunks=2)
        _assert_stats_identical(pooled, matrix["shm"])
        assert _segments() == before

    def test_heartbeat_advances_once_per_range(self, monkeypatch):
        class _Broken(_InlinePool):
            def submit(self, fn, *args, **kwargs):
                raise engine.BrokenExecutor("fake")

        class _Heartbeat:
            total = None
            advances = []

            def update(self, advance=0, events=0):
                self.advances.append((advance, events))

            def close(self):
                pass

        monkeypatch.setattr(engine, "ProcessPoolExecutor", _Broken)
        heartbeat = _Heartbeat()
        run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine="shm", workers=4,
            range_chunks=2, heartbeat=heartbeat)
        # 7 chunks in ranges of 2 -> 4 ranges, each advanced exactly once
        # on the serial-fallback path that completed it; the engine sizes
        # the bar in ranges, not chunks.
        assert heartbeat.total == 4
        assert len(heartbeat.advances) == 4
        assert sum(events for _, events in heartbeat.advances) == EVENTS


class TestArena:
    COLUMNS = {
        "time_s": np.linspace(0.0, 1.0, 7),
        "flip_bit": np.arange(7, dtype=np.int64) * 3,
        "flags": np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8),
    }

    def _copied_read(self, arena, descriptor):
        """Read back through a detached copy of the arena bytes.

        The zero-copy views alias the segment, and a mapping with live
        exports cannot be unmapped — tests must not leak views past
        ``close()`` (the engine copies out before closing, too).
        """
        return read_columns(memoryview(bytearray(arena.buf)), descriptor)

    def test_round_trip(self):
        with ShmArena(4096) as arena:
            descriptor = write_columns(arena.name, 0, 4096, self.COLUMNS)
            assert descriptor is not None
            assert descriptor.segment == arena.name
            assert descriptor.length <= 4096
            got = self._copied_read(arena, descriptor)
            assert list(got) == list(self.COLUMNS)
            for key, array in self.COLUMNS.items():
                assert got[key].dtype == array.dtype
                np.testing.assert_array_equal(got[key], array)

    def test_round_trip_at_an_offset(self):
        with ShmArena(8192) as arena:
            descriptor = write_columns(arena.name, 4096, 4096, self.COLUMNS)
            assert descriptor.offset == 4096
            got = self._copied_read(arena, descriptor)
            np.testing.assert_array_equal(got["flip_bit"],
                                          self.COLUMNS["flip_bit"])

    def test_checksum_mismatch_raises(self):
        with ShmArena(4096) as arena:
            descriptor = write_columns(arena.name, 0, 4096, self.COLUMNS)
            block = descriptor.columns[0]
            arena.buf[block.offset] ^= 0x01  # one flipped bit
            with pytest.raises(ValueError, match="checksum mismatch"):
                self._copied_read(arena, descriptor)

    def test_overflow_returns_none_without_attaching(self):
        # Capacity check precedes the attach: a bogus segment name is
        # fine because an oversized write must bail out before mapping.
        assert write_columns("no-such-segment", 0, 8, self.COLUMNS) is None

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena(1024)
        name = arena.name
        assert name in _segments()
        arena.close()
        arena.close()
        assert name not in _segments()

    def test_orphan_detection_and_reclaim(self):
        # A segment named for a process that no longer exists: exactly
        # what a kill -9'd campaign leaves behind.
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        dead_pid = int(probe.stdout)
        name = f"{PREFIX}-{dead_pid}-feedface"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as handle:
            handle.write(b"\0" * 64)
        try:
            assert name in orphaned_segments()
            assert name in cleanup_stale()
            assert name not in _segments()
            assert name not in orphaned_segments()
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_live_segments_are_not_orphans(self):
        with ShmArena(1024) as arena:
            assert arena.name not in orphaned_segments()
            assert cleanup_stale() == []

    def test_creation_reclaims_earlier_orphans(self):
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        name = f"{PREFIX}-{int(probe.stdout)}-deadbeef"
        path = os.path.join("/dev/shm", name)
        with open(path, "wb") as handle:
            handle.write(b"\0" * 64)
        try:
            with ShmArena(1024) as arena:
                assert name in arena.reclaimed
            assert name not in _segments()
        finally:
            if os.path.exists(path):
                os.unlink(path)


class TestSmallestMask:
    def _oracle(self, u, counts):
        return _inverse_permutations(u) < counts[:, None]

    def test_matches_oracle_on_random_rows(self):
        rng = np.random.default_rng(7)
        u = rng.random((200, 8))
        counts = rng.integers(1, 9, size=200)
        np.testing.assert_array_equal(
            engine._smallest_mask(u, counts), self._oracle(u, counts))

    def test_forced_boundary_ties_fall_back_to_stable_ranks(self):
        # Row 0 ties exactly at the selection boundary (counts=2 over
        # [.5, .5, .5, .1]): membership must follow the stable argsort,
        # i.e. earlier-index duplicates win.
        u = np.array([
            [0.5, 0.5, 0.5, 0.1],
            [0.5, 0.1, 0.5, 0.5],
            [0.2, 0.2, 0.2, 0.2],
        ])
        counts = np.array([2, 3, 1])
        np.testing.assert_array_equal(
            engine._smallest_mask(u, counts), self._oracle(u, counts))

    def test_full_width_rows_have_no_boundary(self):
        u = np.array([[0.3, 0.3, 0.3]])
        counts = np.array([3])
        np.testing.assert_array_equal(
            engine._smallest_mask(u, counts),
            np.ones((1, 3), dtype=bool))

    def test_empty_input(self):
        empty = np.empty((0, 4))
        got = engine._smallest_mask(empty, np.empty(0, dtype=np.int64))
        assert got.shape == (0, 4)
        assert got.dtype == bool

"""Tests for the AN-encoded data pattern."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.beam.ancode import AN_CONSTANT, an_check, an_decode, an_encode, an_pattern_words


class TestANCode:
    def test_constant_is_2_32_minus_1(self):
        assert AN_CONSTANT == 2**32 - 1

    def test_encode_zero(self):
        assert an_encode(0) == 0
        assert an_check(0)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, index):
        word = an_encode(index)
        assert an_check(word)
        assert an_decode(word) == index

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=63))
    def test_single_bit_corruption_detected(self, index, bit):
        word = an_encode(index) ^ (1 << bit)
        assert not an_check(word)

    def test_decode_rejects_corruption(self):
        with pytest.raises(ValueError):
            an_decode(an_encode(7) ^ 1)

    def test_words_fit_64_bits(self):
        # Largest word index on a 32GB device: 4 words x 2^30 entries.
        largest = an_encode(4 * 2**30 - 1)
        assert largest < 2**64
        assert an_check(largest)


class TestPatternWords:
    def test_four_words_per_entry(self):
        words = an_pattern_words(123)
        assert words.shape == (4,)
        for offset, word in enumerate(int(w) for w in words):
            assert an_decode(word) == 123 * 4 + offset

    def test_distinct_across_entries(self):
        assert set(an_pattern_words(0).tolist()).isdisjoint(
            an_pattern_words(1).tolist()
        )

    def test_mixed_bit_density(self):
        # The point of the AN pattern: codewords are neither all-0 nor
        # sparse; check a typical word has a healthy mix of 1s.
        word = int(an_pattern_words(10_000_000)[2])
        ones = bin(word).count("1")
        assert 8 < ones < 56

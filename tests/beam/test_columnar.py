"""Seed-for-seed equivalence of the columnar beam engine vs the scalar
reference paths: event synthesis, packed device scans, post-processing
and the statistics-campaign engine (serial and fanned out)."""

import numpy as np
import pytest

from repro.beam.campaign import BeamCampaign, CampaignConfig
from repro.beam.displacement import DamageParameters
from repro.beam.engine import StatisticsResult, run_statistics_campaign
from repro.beam.events import BatchEventSynthesis, EventParameters
from repro.beam.fliptable import (
    FlipTable,
    RecordTable,
    pack_positions,
    unpack_packed_rows,
)
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    Microbenchmark,
    STANDARD_PATTERNS,
    UniformPattern,
)
from repro.beam.postprocess import (
    bits_per_word_histogram,
    bits_per_word_histogram_table,
    breadth_class_fractions,
    breadth_class_fractions_table,
    byte_alignment_stats,
    byte_alignment_stats_table,
    derive_table1,
    derive_table1_table,
    events_from_truth,
    events_from_truth_table,
    filter_intermittent,
    filter_intermittent_table,
    group_events,
    group_events_table,
    mbme_breadth_histogram,
    mbme_breadth_histogram_table,
)
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry


def _small_geometry():
    return HBM2Geometry.for_gpu(32)


# ---------------------------------------------------------------------------
# Packed round trips
# ---------------------------------------------------------------------------

class TestPacking:
    def test_pack_unpack_round_trip(self):
        site_of_flip = np.repeat(np.arange(50), 4)
        bits = np.tile(np.array([0, 63, 64, 287]), 50)
        rows = pack_positions(site_of_flip, bits, 50)
        row_back, bit_back = unpack_packed_rows(rows)
        assert np.array_equal(row_back, site_of_flip)
        order = np.lexsort((bits, site_of_flip))
        assert np.array_equal(bit_back, bits[order])

    def test_record_table_round_trip(self):
        config = CampaignConfig(
            runs=2, write_cycles=4, reads_per_write=2, loop_time_s=2.0,
            event_parameters=EventParameters(mean_time_to_event_s=6.0),
            damage_parameters=DamageParameters(
                leaky_pool=80, saturation_fluence=3e8
            ),
        )
        records = BeamCampaign(config).run().records
        assert records, "campaign should observe something"
        table = RecordTable.from_records(records)
        assert table.to_records() == records


# ---------------------------------------------------------------------------
# Vectorized synthesis vs the scalar oracle
# ---------------------------------------------------------------------------

class TestBatchSynthesis:
    def test_table_matches_events_same_streams(self):
        times = np.arange(400, dtype=np.float64) * 17.0
        table = BatchEventSynthesis(seed=101).table_at(times)
        events = BatchEventSynthesis(seed=101).events_at(times)
        reference = FlipTable.from_events(events)
        assert table.n_events == reference.n_events == 400
        assert np.array_equal(table.site_event, reference.site_event)
        assert np.array_equal(table.site_entry, reference.site_entry)
        assert np.array_equal(table.flip_bit, reference.flip_bit)
        assert np.array_equal(
            table.flips_per_site(), reference.flips_per_site()
        )

    def test_interval_table_matches_interval_events(self):
        a = BatchEventSynthesis(seed=77)
        b = BatchEventSynthesis(seed=77)
        # two consecutive intervals: spawn state must advance identically
        for start in (0.0, 400.0):
            table = a.interval_table(400.0, start)
            events = b.interval_events(400.0, start)
            reference = FlipTable.from_events(events)
            assert np.array_equal(table.site_entry, reference.site_entry)
            assert np.array_equal(table.flip_bit, reference.flip_bit)
            assert np.allclose(
                table.event_columns["time_s"],
                [event.time_s for event in events],
                rtol=0, atol=0,
            )


# ---------------------------------------------------------------------------
# Batched device scan vs the scalar scan
# ---------------------------------------------------------------------------

class TestBatchScan:
    @pytest.mark.parametrize("pattern_index", [0, 1, 2])
    def test_microbenchmark_records_identical(self, pattern_index):
        pattern_scalar = STANDARD_PATTERNS()[pattern_index]
        pattern_batch = STANDARD_PATTERNS()[pattern_index]
        rng = np.random.default_rng(9)

        def corrupt(device):
            for entry in rng.integers(0, 10_000, size=40):
                flips = np.zeros(288, dtype=np.uint8)
                flips[rng.choice(288, size=3, replace=False)] = 1
                device.inject_upset(int(entry), flips)

        results = []
        for pattern, use_batch in (
            (pattern_scalar, False), (pattern_batch, True)
        ):
            rng = np.random.default_rng(9)
            device = SimulatedHBM2(_small_geometry())
            corrupt(device)
            bench = Microbenchmark(
                device, write_cycles=2, reads_per_write=2,
                use_batch_scan=use_batch,
            )
            # re-corrupt after each write via the environment hook
            cycle = {"n": 0}

            def environment(dt, device=device):
                corrupt(device)

            results.append(bench.run(pattern, environment=environment))
        assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Columnar post-processing vs the scalar helpers
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def campaign_records():
    config = CampaignConfig(
        runs=3, write_cycles=6, reads_per_write=3, loop_time_s=2.0,
        event_parameters=EventParameters(mean_time_to_event_s=6.0),
        damage_parameters=DamageParameters(
            leaky_pool=120, saturation_fluence=3e8
        ),
    )
    return BeamCampaign(config).run().records


class TestColumnarPostprocess:
    def test_filter_partitions_identical(self, campaign_records):
        scalar = filter_intermittent(campaign_records)
        table = filter_intermittent_table(
            RecordTable.from_records(campaign_records)
        ).to_filter_result()
        assert table.soft_records == scalar.soft_records
        assert table.intermittent_records == scalar.intermittent_records
        assert table.damaged_entries == scalar.damaged_entries

    def test_grouping_identical(self, campaign_records):
        scalar = group_events(filter_intermittent(campaign_records).soft_records)
        grouped = group_events_table(
            filter_intermittent_table(
                RecordTable.from_records(campaign_records)
            ).soft
        )
        assert grouped.to_observed_events() == scalar

    def test_truth_statistics_identical(self):
        times = np.arange(1200, dtype=np.float64) * 20.0
        truth = BatchEventSynthesis(seed=11).table_at(times)
        events = events_from_truth(
            BatchEventSynthesis(seed=11).events_at(times)
        )
        table = events_from_truth_table(truth)
        assert breadth_class_fractions_table(table) == \
            breadth_class_fractions(events)
        assert mbme_breadth_histogram_table(table) == \
            mbme_breadth_histogram(events)
        assert byte_alignment_stats_table(table) == \
            byte_alignment_stats(events)
        for aligned in (True, False):
            assert bits_per_word_histogram_table(
                table, byte_aligned=aligned
            ) == bits_per_word_histogram(events, byte_aligned=aligned)

    def test_table1_weights_bit_identical(self):
        times = np.arange(1200, dtype=np.float64) * 20.0
        truth = BatchEventSynthesis(seed=13).table_at(times)
        events = events_from_truth(
            BatchEventSynthesis(seed=13).events_at(times)
        )
        columnar = derive_table1_table(events_from_truth_table(truth))
        scalar = derive_table1(events)
        assert columnar == scalar  # exact float equality, not approx


# ---------------------------------------------------------------------------
# The statistics-campaign engine
# ---------------------------------------------------------------------------

class TestStatisticsEngine:
    def test_engines_bit_identical(self):
        columnar = run_statistics_campaign(500, seed=41, engine="columnar")
        reference = run_statistics_campaign(500, seed=41, engine="reference")
        assert columnar.n_records == reference.n_records
        assert columnar.n_observed == reference.n_observed
        assert columnar.class_fractions == reference.class_fractions
        assert columnar.mbme_histogram == reference.mbme_histogram
        assert columnar.byte_alignment == reference.byte_alignment
        assert columnar.bits_per_word_aligned == \
            reference.bits_per_word_aligned
        assert columnar.bits_per_word_non_aligned == \
            reference.bits_per_word_non_aligned
        assert columnar.table1 == reference.table1
        assert columnar.observed_events == reference.observed_events

    def test_workers_bit_identical(self):
        serial = run_statistics_campaign(500, seed=41, chunk=128)
        fanned = run_statistics_campaign(500, seed=41, chunk=128, workers=3)
        assert fanned.table1 == serial.table1
        assert fanned.class_fractions == serial.class_fractions
        assert fanned.observed_events == serial.observed_events

    def test_stage_accounting(self):
        result = run_statistics_campaign(200, seed=7)
        assert set(result.stage_seconds) == \
            {"synthesize", "scan", "postprocess"}
        assert all(seconds >= 0 for seconds in result.stage_seconds.values())
        rates = result.events_per_second
        assert set(rates) == set(result.stage_seconds)
        counters = result.counters()
        assert counters["engine"] == "columnar"
        assert counters["events"] == 200
        assert "scan_events_per_s" in counters

    def test_empty_campaign(self):
        result = run_statistics_campaign(0, seed=7)
        assert result.n_records == 0
        assert result.n_observed == 0
        assert result.table1 == {}
        assert result.observed_events == []

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_statistics_campaign(10, engine="gpu")

    def test_result_is_pure_function_of_seed(self):
        a = run_statistics_campaign(300, seed=19)
        b = run_statistics_campaign(300, seed=19)
        assert a.table1 == b.table1
        assert isinstance(a, StatisticsResult)


# ---------------------------------------------------------------------------
# Vectorized data patterns vs their defining formulas
# ---------------------------------------------------------------------------

class TestPatternVectorization:
    def test_checkerboard_formula(self):
        pattern = CheckerboardPattern()
        entries = np.array([0, 1, 2, 3, 1000, 54321], dtype=np.int64)
        batch = pattern.data_bits_batch(entries)
        for row, entry in zip(batch, entries):
            expected = np.zeros(256, dtype=np.uint8)
            for word in range(4):
                phase = (entry + word) % 2
                for offset in range(64):
                    expected[word * 64 + offset] = \
                        1 if offset % 2 == phase else 0
            assert np.array_equal(row, expected)

    def test_an_pattern_formula(self):
        from repro.beam.ancode import an_pattern_words_batch

        pattern = ANPattern()
        entries = np.array([0, 7, 4096, 87654321], dtype=np.int64)
        batch = pattern.data_bits_batch(entries)
        words = an_pattern_words_batch(entries)
        for row, word_row in zip(batch, words):
            expected = np.concatenate([
                [(int(word) >> shift) & 1 for shift in range(64)]
                for word in word_row
            ]).astype(np.uint8)
            assert np.array_equal(row, expected)

    def test_scalar_view_memoizes(self):
        pattern = UniformPattern(ones=True)
        first = pattern.data_bits(5)
        second = pattern.data_bits(5)
        assert np.array_equal(first, second)
        first[:] = 0  # returned copies must not poison the memo
        assert pattern.data_bits(5).all()

"""Tests for the DRAM microbenchmark and data patterns."""

import numpy as np
import pytest

from repro.beam.ancode import an_check
from repro.beam.microbenchmark import (
    ANPattern,
    CheckerboardPattern,
    Microbenchmark,
    STANDARD_PATTERNS,
    UniformPattern,
)
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry


class TestPatterns:
    def test_standard_pattern_names(self):
        names = {pattern.name for pattern in STANDARD_PATTERNS()}
        assert names == {"all0", "checkerboard", "an-encoded"}

    def test_uniform_patterns(self):
        assert not UniformPattern(ones=False).data_bits(0).any()
        assert UniformPattern(ones=True).data_bits(5).all()

    def test_inverse_polarity(self):
        pattern = UniformPattern(ones=False)
        normal = pattern.entry_fn(inverted=False)(0)
        inverted = pattern.entry_fn(inverted=True)(0)
        assert not normal[:256].any()
        assert inverted[:256].all()
        # The ECC region is untouched in both polarities.
        assert not normal[256:].any()
        assert not inverted[256:].any()

    def test_checkerboard_alternates(self):
        bits = CheckerboardPattern().data_bits(0)
        word0 = bits[:64]
        word1 = bits[64:128]
        assert word0[0::2].all() and not word0[1::2].any()  # 0x55...
        assert word1[1::2].all() and not word1[0::2].any()  # 0xAA...

    def test_checkerboard_half_density(self):
        assert CheckerboardPattern().data_bits(9).sum() == 128

    def test_an_pattern_words_are_codewords(self):
        bits = ANPattern().data_bits(12345)
        for word in range(4):
            value = 0
            for bit in range(64):
                value |= int(bits[64 * word + bit]) << bit
            assert an_check(value)


class TestMicrobenchmark:
    def _device(self):
        return SimulatedHBM2(HBM2Geometry.for_gpu(32))

    def test_clean_run_produces_no_records(self):
        bench = Microbenchmark(self._device(), write_cycles=2, reads_per_write=2)
        assert bench.run(UniformPattern()) == []

    def test_detects_injected_upset(self):
        device = self._device()
        bench = Microbenchmark(device, write_cycles=1, reads_per_write=3)
        flips = np.zeros(288, dtype=np.uint8)
        flips[[10, 11]] = 1

        def environment(dt):
            # Inject once, after the write completes.
            if not environment.done:
                device.inject_upset(77, flips)
                environment.done = True

        environment.done = False
        records = bench.run(UniformPattern(), environment=environment)
        assert len(records) == 3  # persists across all read passes
        assert all(r.entry_index == 77 for r in records)
        assert records[0].bit_positions == (10, 11)

    def test_next_write_clears_soft_error(self):
        device = self._device()
        bench = Microbenchmark(device, write_cycles=2, reads_per_write=2)
        flips = np.zeros(288, dtype=np.uint8)
        flips[10] = 1
        state = {"injected": False}

        def environment(dt):
            if not state["injected"]:
                device.inject_upset(5, flips)
                state["injected"] = True

        records = bench.run(UniformPattern(), environment=environment)
        cycles = {record.write_cycle for record in records}
        assert cycles == {0}  # gone after the cycle-1 write

    def test_ecc_region_flips_invisible(self):
        device = self._device()
        bench = Microbenchmark(device, write_cycles=1, reads_per_write=1)
        flips = np.zeros(288, dtype=np.uint8)
        flips[270] = 1  # inside the 4B ECC region

        def environment(dt):
            device.inject_upset(3, flips)

        assert bench.run(UniformPattern(), environment=environment) == []

    def test_record_metadata(self):
        device = self._device()
        bench = Microbenchmark(device, write_cycles=1, reads_per_write=1,
                               loop_time_s=0.5)
        flips = np.zeros(288, dtype=np.uint8)
        flips[0] = 1

        def environment(dt):
            device.inject_upset(9, flips)

        records = bench.run(CheckerboardPattern(), run_index=4,
                            start_time_s=100.0, environment=environment)
        record = records[0]
        assert record.run == 4
        assert record.pattern == "checkerboard"
        assert record.time_s >= 100.0
        assert not record.inverted

    def test_weak_cell_recurs_across_cycles(self):
        from repro.dram.refresh import WeakCell

        device = self._device()
        device.install_weak_cell(WeakCell(50, 7, retention_s=1e-3, leaks_to=1))
        bench = Microbenchmark(device, write_cycles=4, reads_per_write=2)
        records = bench.run(UniformPattern())
        cycles = {record.write_cycle for record in records}
        # A 0->1 leaking cell corrupts the non-inverted (all-0) cycles.
        assert cycles == {0, 2}

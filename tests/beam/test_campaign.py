"""End-to-end tests of the beam-campaign driver."""

import numpy as np
import pytest

from repro.beam.campaign import BeamCampaign, CampaignConfig, refresh_sweep
from repro.beam.displacement import DamageParameters, DisplacementDamageModel
from repro.beam.events import EventParameters
from repro.beam.postprocess import filter_intermittent, group_events
from repro.dram.refresh import RefreshConfig


@pytest.fixture(scope="module")
def result():
    config = CampaignConfig(
        runs=2,
        write_cycles=5,
        reads_per_write=4,
        loop_time_s=2.0,
        seed=77,
        event_parameters=EventParameters(mean_time_to_event_s=6.0),
        damage_parameters=DamageParameters(leaky_pool=60, saturation_fluence=2e8),
    )
    return BeamCampaign(config).run()


class TestCampaign:
    def test_produces_events_and_records(self, result):
        assert len(result.events) > 5
        assert len(result.records) > 5

    def test_fluence_accrued(self, result):
        expected_time = 2 * 5 * (1 + 4) * 2.0
        assert result.clock.elapsed_s == pytest.approx(expected_time)
        assert result.clock.fluence == pytest.approx(9.8e5 * expected_time)

    def test_accumulation_curve_monotone(self, result):
        counts = [count for _, count in result.accumulation_curve]
        assert counts == sorted(counts)
        fluences = [fluence for fluence, _ in result.accumulation_curve]
        assert fluences == sorted(fluences)

    def test_weak_cells_created(self, result):
        assert result.weak_cell_count > 10

    def test_observed_events_are_subset_of_truth(self, result):
        # Every observed erroneous entry must trace back to ground truth: a
        # real SEU, a filtered damaged entry, or a weak cell seen too few
        # times for the filter (e.g. created late in the campaign).
        filtered = filter_intermittent(result.records)
        observed = group_events(filtered.soft_records)
        true_entries = set()
        for event in result.events:
            true_entries.update(event.flips)
        weak_entries = {cell.entry_index for cell in result.damage.damaged_cells}
        for event in observed:
            for entry in event.flips:
                assert (
                    entry in true_entries
                    or entry in filtered.damaged_entries
                    or entry in weak_entries
                )

    def test_filter_catches_most_weak_cells(self, result):
        filtered = filter_intermittent(result.records)
        # Damaged entries discovered by the filter must be real weak cells
        # (no soft-error entry recurs across write cycles at these rates).
        weak_entries = {cell.entry_index for cell in result.damage.damaged_cells}
        soft_entries = set()
        for event in result.events:
            soft_entries.update(event.flips)
        for entry in filtered.damaged_entries:
            assert entry in weak_entries or entry in soft_entries


class TestRefreshSweep:
    def test_sweep_monotone(self):
        model = DisplacementDamageModel(seed=5)
        model.accumulate(1e11)
        sweep = refresh_sweep(model, [8e-3, 16e-3, 32e-3, 48e-3])
        counts = [sweep[p] for p in sorted(sweep)]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_sweep_keys_are_periods(self):
        model = DisplacementDamageModel(seed=6)
        model.accumulate(1e10)
        sweep = refresh_sweep(model, [16e-3])
        assert set(sweep) == {16e-3}


class TestAnnealingProtocol:
    """The paper's exact Section-4 annealing protocol: a trial refresh
    sweep, ~3.5 hours outside the beam, then the full sweep — short
    retention periods lose far more cells than long ones."""

    def test_trial_then_full_experiment(self):
        from repro.beam.displacement import DisplacementDamageModel

        model = DisplacementDamageModel(seed=40)
        model.accumulate(1e11)  # a heavily damaged GPU

        trial = refresh_sweep(model, [8e-3, 48e-3])
        model.anneal(3.5 * 3600)
        full = refresh_sweep(model, [8e-3, 48e-3])

        drop_short = 1.0 - full[8e-3] / trial[8e-3]
        drop_long = 1.0 - full[48e-3] / trial[48e-3]
        # Paper: -26% at 8 ms vs -2.5% at 48 ms.
        assert 0.05 < drop_short < 0.5
        assert 0.0 <= drop_long < 0.10
        assert drop_short > 3 * drop_long


class TestFitDerivation:
    """Closing the characterization loop: campaign event counts convert to
    terrestrial FIT rates via the fluence clock."""

    def test_campaign_fit_matches_configured_rate(self):
        from repro.beam.flux import CHIPIR_FLUX, TERRESTRIAL_FLUX, FluenceClock

        clock = FluenceClock()
        beam_seconds = 3600.0
        clock.advance(beam_seconds)
        # With a 20s in-beam MTTE the underlying terrestrial event rate is
        # (1/20s) / acceleration; events_to_fit must invert that exactly.
        events = int(beam_seconds / 20.0)
        fit = clock.events_to_fit(events)
        acceleration = CHIPIR_FLUX / TERRESTRIAL_FLUX
        expected_per_hour = (1.0 / 20.0) * 3600.0 / acceleration
        assert fit == pytest.approx(expected_per_hour * 1e9, rel=1e-6)


class TestCampaignFitDerivation:
    def test_fit_per_gbit_closed_form(self, result):
        """Events / terrestrial-equivalent hours / capacity — checked
        against a hand computation from the clock state."""
        fit = result.fit_per_gbit()
        hours = result.clock.terrestrial_equivalent_hours()
        gbits = result.device.geometry.data_bytes_total * 8 / 1e9
        expected = len(result.events) / hours * 1e9 / gbits
        assert fit == pytest.approx(expected)
        assert fit > 0

    def test_end_to_end_into_system_model(self, result):
        """A campaign-derived rate can drive the Section 7.3 models."""
        from repro.core import get_scheme
        from repro.errormodel import weighted_outcomes
        from repro.system import GpuMemoryModel, assess_scheme

        gpu = GpuMemoryModel(fit_per_gbit=result.fit_per_gbit(),
                             memory_gbit=256.0)  # the campaign's 32GB GPU
        outcome = weighted_outcomes(get_scheme("trio"), samples=2000, seed=1)
        assessment = assess_scheme(outcome, gpu=gpu)
        assert assessment.sdc_fit >= 0.0
        assert assessment.due_fit > 0.0

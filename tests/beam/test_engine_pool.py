"""Pool degradation in the columnar statistics engine.

Mirrors the Monte Carlo harness's graceful-degradation coverage on the
beam side: a chunk that times out, a pool that breaks, or a pool that
cannot start must all degrade to in-process serial evaluation and still
produce results bit-identical to the plain serial run — with the requeue
accounted exactly once per chunk in the campaign counters.
"""

import logging

import pytest

from repro.beam import engine
from repro.beam.engine import run_statistics_campaign

EVENTS = 500
CHUNK = 128  # -> 4 chunks, enough to exercise the fan-out


class _FakeFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self, timeout=None):
        raise self._exc

    def cancel(self):
        pass


class _FakePool:
    """Stands in for ProcessPoolExecutor; every chunk fails the same way."""

    exc_factory = None

    def __init__(self, max_workers=None, initializer=None):
        pass

    def submit(self, fn, *args, **kwargs):
        return _FakeFuture(self.exc_factory())

    def shutdown(self, wait=True, cancel_futures=False):
        pass


@pytest.fixture
def serial_result():
    return run_statistics_campaign(EVENTS, seed=23, chunk=CHUNK)


def _patched(monkeypatch, exc_factory):
    pool = type("_Pool", (_FakePool,),
                {"exc_factory": staticmethod(exc_factory)})
    monkeypatch.setattr(engine, "ProcessPoolExecutor", pool)


def _assert_identical(fanned, serial):
    assert fanned.table1 == serial.table1
    assert fanned.class_fractions == serial.class_fractions
    assert fanned.n_records == serial.n_records
    assert fanned.mbme_histogram == serial.mbme_histogram


class TestGracefulDegradation:
    def test_chunk_timeout_requeues_then_falls_back(self, monkeypatch,
                                                    caplog, serial_result):
        self._expect_degraded(
            monkeypatch, caplog, serial_result,
            lambda: engine._FuturesTimeout(), chunk_timeout=0.01,
            messages=("exceeded", "falling back"),
        )

    def test_broken_pool_falls_back(self, monkeypatch, caplog,
                                    serial_result):
        self._expect_degraded(
            monkeypatch, caplog, serial_result,
            lambda: engine.BrokenExecutor("fake"),
            messages=("worker pool broke", "falling back"),
        )

    def _expect_degraded(self, monkeypatch, caplog, serial_result,
                         exc_factory, messages, chunk_timeout=None):
        _patched(monkeypatch, exc_factory)
        with caplog.at_level(logging.WARNING, logger="repro.beam.engine"):
            fanned = run_statistics_campaign(
                EVENTS, seed=23, chunk=CHUNK, workers=4,
                chunk_timeout=chunk_timeout,
            )
        _assert_identical(fanned, serial_result)
        for expected in messages:
            assert any(expected in record.message
                       for record in caplog.records), expected

    def test_pool_that_cannot_start_falls_back(self, monkeypatch, caplog,
                                               serial_result):
        def _raise(max_workers=None, initializer=None):
            raise OSError("no more processes")

        monkeypatch.setattr(engine, "ProcessPoolExecutor", _raise)
        with caplog.at_level(logging.WARNING, logger="repro.beam.engine"):
            fanned = run_statistics_campaign(EVENTS, seed=23, chunk=CHUNK,
                                             workers=4)
        _assert_identical(fanned, serial_result)
        assert any("cannot start worker pool" in record.message
                   for record in caplog.records)


class TestRequeueCounters:
    def test_each_chunk_requeued_exactly_once_despite_double_timeouts(
            self, monkeypatch, serial_result):
        _patched(monkeypatch, lambda: engine._FuturesTimeout())
        fanned = run_statistics_campaign(EVENTS, seed=23, chunk=CHUNK,
                                         workers=4, chunk_timeout=0.01)
        _assert_identical(fanned, serial_result)
        n_chunks = (EVENTS + CHUNK - 1) // CHUNK
        counters = fanned.counters()
        # 4 chunks timing out on both attempts: 4 requeued, 8 timeouts —
        # the reconciled accounting this helper exists to pin down.
        assert counters["pool_requeued"] == n_chunks
        assert counters["pool_timeouts"] == 2 * n_chunks
        assert counters["pool_serial_fallback"] == n_chunks
        assert counters["pool_completed"] == 0

    def test_trace_still_complete_after_serial_fallback(self, monkeypatch):
        _patched(monkeypatch, lambda: engine.BrokenExecutor("fake"))
        fanned = run_statistics_campaign(EVENTS, seed=23, chunk=CHUNK,
                                         workers=4)
        chunks = [r for r in fanned.trace if r.name == "chunk"]
        n_chunks = (EVENTS + CHUNK - 1) // CHUNK
        assert len(chunks) == n_chunks
        assert {c.attrs["index"] for c in chunks} == set(range(n_chunks))

"""Tests for flux/fluence accounting."""

import pytest

from repro.beam.flux import (
    CHIPIR_FLUX,
    TERRESTRIAL_FLUX,
    FluenceClock,
    acceleration_factor,
)


class TestConstants:
    def test_paper_flux(self):
        assert CHIPIR_FLUX == 9.8e5

    def test_terrestrial_reference(self):
        assert TERRESTRIAL_FLUX * 3600 == pytest.approx(14.0)

    def test_acceleration_factor_matches_paper(self):
        # Section 3: "an acceleration factor of 2.52e8".
        assert acceleration_factor() == pytest.approx(2.52e8, rel=0.001)


class TestFluenceClock:
    def test_fluence_accrues_in_beam(self):
        clock = FluenceClock()
        step = clock.advance(10.0)
        assert step == pytest.approx(9.8e6)
        assert clock.fluence == pytest.approx(9.8e6)
        assert clock.elapsed_s == 10.0

    def test_no_fluence_out_of_beam(self):
        clock = FluenceClock()
        clock.advance(5.0)
        clock.remove_from_beam()
        step = clock.advance(100.0)
        assert step == 0.0
        assert clock.elapsed_s == 105.0
        assert clock.fluence == pytest.approx(5 * 9.8e5)

    def test_return_to_beam(self):
        clock = FluenceClock()
        clock.remove_from_beam()
        clock.advance(10.0)
        clock.return_to_beam()
        clock.advance(1.0)
        assert clock.fluence == pytest.approx(9.8e5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FluenceClock().advance(-1.0)

    def test_terrestrial_equivalent(self):
        clock = FluenceClock()
        clock.advance(1.0)  # one beam second
        # One beam-second is ~2.52e8 terrestrial seconds = ~7e4 hours.
        assert clock.terrestrial_equivalent_hours() == pytest.approx(
            2.52e8 / 3600, rel=0.001
        )

    def test_events_to_fit(self):
        clock = FluenceClock()
        clock.advance(3600.0)  # one beam hour
        hours = clock.terrestrial_equivalent_hours()
        assert clock.events_to_fit(5) == pytest.approx(5 / hours * 1e9)

    def test_events_to_fit_requires_fluence(self):
        with pytest.raises(ZeroDivisionError):
            FluenceClock().events_to_fit(1)

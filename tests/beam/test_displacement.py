"""Tests for the displacement-damage (intermittent error) model."""

import numpy as np
import pytest

from repro.beam.displacement import DamageParameters, DisplacementDamageModel
from repro.dram.refresh import RefreshConfig


def _model(seed=1, **overrides):
    params = DamageParameters(**overrides) if overrides else DamageParameters()
    return DisplacementDamageModel(parameters=params, seed=seed)


class TestAccumulation:
    def test_no_fluence_no_damage(self):
        model = _model()
        assert model.accumulate(0.0) == []
        assert len(model.damaged_cells) == 0

    def test_negative_fluence_rejected(self):
        with pytest.raises(ValueError):
            _model().accumulate(-1.0)

    def test_linear_early_regime(self):
        # Figure 3c: counts grow linearly with fluence before saturation.
        model = _model(seed=2)
        counts = []
        for _ in range(10):
            model.accumulate(model.parameters.saturation_fluence / 100)
            counts.append(len(model.damaged_cells))
        from repro.analysis.fitting import fit_linear

        fit = fit_linear(np.arange(1, 11, dtype=float), np.array(counts, dtype=float))
        assert fit.r_squared > 0.9

    def test_saturates_at_leaky_pool(self):
        model = _model(seed=3, leaky_pool=100, saturation_fluence=1e6)
        for _ in range(50):
            model.accumulate(1e6)
        assert len(model.damaged_cells) <= 100
        assert len(model.damaged_cells) > 80  # essentially exhausted

    def test_expected_damage_formula(self):
        model = _model()
        pool = model.parameters.leaky_pool
        sat = model.parameters.saturation_fluence
        assert model.expected_damaged(0.0) == 0.0
        assert model.expected_damaged(sat) == pytest.approx(pool * (1 - np.exp(-1)))

    def test_deterministic_per_seed(self):
        first = _model(seed=9)
        second = _model(seed=9)
        first.accumulate(1e9)
        second.accumulate(1e9)
        assert len(first.damaged_cells) == len(second.damaged_cells)


class TestRetentionDistribution:
    def test_counts_increase_with_refresh_period(self):
        model = _model(seed=4)
        model.accumulate(1e10)  # saturate
        counts = [
            model.observable_count(RefreshConfig(period))
            for period in (8e-3, 16e-3, 48e-3)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_paper_count_ratios(self):
        # Paper: ~294 cells at 8 ms, ~1,000 at 16 ms, ~2,589 at 48 ms —
        # i.e. roughly 11%/37%/96% of the damaged population.
        model = _model(seed=5)
        model.accumulate(1e11)
        total = len(model.damaged_cells)
        at_8 = model.observable_count(RefreshConfig(8e-3)) / total
        at_16 = model.observable_count(RefreshConfig(16e-3)) / total
        at_48 = model.observable_count(RefreshConfig(48e-3)) / total
        assert 0.05 < at_8 < 0.20
        assert 0.25 < at_16 < 0.50
        assert at_48 > 0.90

    def test_predicted_matches_observed(self):
        model = _model(seed=6)
        model.accumulate(1e11)
        for period in (8e-3, 16e-3, 32e-3):
            observed = model.observable_count(RefreshConfig(period))
            predicted = model.predicted_observable(RefreshConfig(period))
            assert observed == pytest.approx(predicted, rel=0.25)

    def test_direction_mostly_one_to_zero(self):
        model = _model(seed=7)
        model.accumulate(1e11)
        cells = model.damaged_cells
        one_to_zero = sum(1 for cell in cells if cell.leaks_to == 0)
        assert one_to_zero / len(cells) > 0.98


class TestAnnealing:
    def test_annealing_reduces_observable_counts(self):
        model = _model(seed=8)
        model.accumulate(1e11)
        before = model.observable_count(RefreshConfig(8e-3))
        model.anneal(3.5 * 3600)
        after = model.observable_count(RefreshConfig(8e-3))
        assert after < before

    def test_short_periods_shrink_relatively_more(self):
        # Paper: -26% at 8 ms vs only -2.5% at 48 ms after ~3.5 h.
        model = _model(seed=9)
        model.accumulate(1e11)
        before_8 = model.observable_count(RefreshConfig(8e-3))
        before_48 = model.observable_count(RefreshConfig(48e-3))
        model.anneal(3.5 * 3600)
        after_8 = model.observable_count(RefreshConfig(8e-3))
        after_48 = model.observable_count(RefreshConfig(48e-3))
        drop_8 = 1 - after_8 / before_8
        drop_48 = 1 - after_48 / before_48
        assert drop_8 > drop_48

    def test_annealing_bounded(self):
        model = _model(seed=10)
        model.accumulate(1e10)
        model.anneal(1e9)  # essentially forever
        assert model._anneal_shift <= model.parameters.anneal_shift_s + 1e-12

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            _model().anneal(-1.0)

"""The streaming statistics path end to end.

A streamed campaign (scout sweep → global damage filter → evaluation
sweep folding into mergeable accumulators) must be float-identical to
the materialized oracle, seed for seed, on every engine and pool
configuration — including a collision-heavy tiny geometry where the
global intermittent filter actually removes events, and the pooled path
where the damaged-entry set travels through a shared-memory broadcast.
"""

import pytest

from repro.beam import engine
from repro.beam.engine import run_statistics_campaign
from repro.dram.geometry import HBM2Geometry
from repro.stats import STATS_KEYS, CampaignAccumulator

SEED = 41
EVENTS = 600
CHUNK = 97  # deliberately not a divisor: last chunk is a short one


def _assert_stats_identical(a, b):
    assert a.n_records == b.n_records
    assert a.n_observed == b.n_observed
    assert a.class_fractions == b.class_fractions
    assert a.mbme_histogram == b.mbme_histogram
    assert a.byte_alignment == b.byte_alignment
    assert a.bits_per_word_aligned == b.bits_per_word_aligned
    assert a.bits_per_word_non_aligned == b.bits_per_word_non_aligned
    assert a.table1 == b.table1


@pytest.fixture(scope="module")
def oracle():
    """The materialized result every streamed run must reproduce."""
    return run_statistics_campaign(
        EVENTS, seed=SEED, chunk=CHUNK, engine="shm")


@pytest.fixture(scope="module")
def streamed():
    return run_statistics_campaign(
        EVENTS, seed=SEED, chunk=CHUNK, engine="shm", stats="streaming")


class TestStreamingEquivalence:
    def test_shm_float_identical(self, oracle, streamed):
        _assert_stats_identical(streamed, oracle)

    def test_columnar_float_identical(self, oracle):
        columnar = run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine="columnar",
            stats="streaming")
        _assert_stats_identical(columnar, oracle)

    def test_range_partition_invariant(self, streamed):
        for range_chunks in (1, 3, 64):
            repartitioned = run_statistics_campaign(
                EVENTS, seed=SEED, chunk=CHUNK, engine="shm",
                stats="streaming", range_chunks=range_chunks)
            _assert_stats_identical(repartitioned, streamed)

    def test_global_filter_fires_on_a_tiny_geometry(self):
        # ~1k entries under 400 events x multiple write cycles: entry
        # collisions are certain, so the scout's damaged set is non-empty
        # and the evaluation sweep must drop the same records the
        # materialized intermittent filter drops.
        geometry = HBM2Geometry(
            num_stacks=1, channels_per_stack=1, banks_per_channel=2,
            subarrays_per_bank=2, rows_per_subarray=16, columns_per_row=16)
        kwargs = dict(seed=7, chunk=64, geometry=geometry)
        materialized = run_statistics_campaign(
            400, engine="shm", **kwargs)
        streamed = run_statistics_campaign(
            400, engine="shm", stats="streaming", **kwargs)
        _assert_stats_identical(streamed, materialized)
        assert streamed.n_observed < 400  # events were really filtered


@pytest.mark.slow
class TestStreamingPooled:
    def test_pooled_matches_serial_with_shm_broadcast(self, streamed):
        pooled = run_statistics_campaign(
            EVENTS, seed=SEED, chunk=CHUNK, engine="shm",
            stats="streaming", workers=2, range_chunks=2)
        _assert_stats_identical(pooled, streamed)


class TestStreamingContract:
    def test_reference_engine_rejected(self):
        with pytest.raises(ValueError, match="no streaming statistics"):
            run_statistics_campaign(100, seed=1, engine="reference",
                                    stats="streaming")

    def test_unknown_stats_mode_rejected(self):
        with pytest.raises(ValueError, match="stats"):
            run_statistics_campaign(100, seed=1, stats="bogus")

    def test_observed_events_refuse_to_materialize(self, streamed):
        with pytest.raises(RuntimeError, match="stats='materialize'"):
            streamed.observed_events

    def test_stats_mode_reported(self, oracle, streamed):
        assert streamed.stats_mode == "streaming"
        assert streamed.counters()["stats"] == "streaming"
        assert oracle.stats_mode == "materialize"
        assert "stats" not in oracle.counters()

    def test_streaming_stage_vocabulary(self, streamed):
        assert set(streamed.stage_seconds) == set(engine._STREAM_STAGES)

    def test_accumulator_state_is_the_result(self, streamed):
        # The returned accumulator is O(state): merging a round-tripped
        # copy of its transport form re-derives every reported statistic.
        clone = CampaignAccumulator.from_state(streamed.accumulator.state())
        final = clone.finalize()
        assert tuple(final) == STATS_KEYS
        assert final["class_fractions"] == streamed.class_fractions
        assert final["table1"] == streamed.table1
        assert clone.n_observed == streamed.n_observed

"""Tests for the protected-memory controller."""

import numpy as np
import pytest

from repro.core import get_scheme
from repro.dram.controller import (
    ProtectedMemory,
    UncorrectableError,
    bits_to_bytes,
    bytes_to_bits,
)
from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry


@pytest.fixture
def memory():
    device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
    return ProtectedMemory(device, get_scheme("trio"))


PAYLOAD = bytes(range(32))


class TestByteConversion:
    def test_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(PAYLOAD)) == PAYLOAD

    def test_wrong_payload_size(self):
        with pytest.raises(ValueError):
            bytes_to_bits(b"short")

    def test_wrong_bit_count(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.zeros(100, dtype=np.uint8))

    def test_bit_order_lsb_first(self):
        bits = bytes_to_bits(bytes([1]) + bytes(31))
        assert bits[0] == 1 and not bits[1:8].any()


class TestDataPath:
    def test_write_read_roundtrip(self, memory):
        memory.write(42, PAYLOAD)
        assert memory.read(42) == PAYLOAD
        assert memory.counters.reads == 1
        assert memory.counters.writes == 1
        assert memory.counters.corrected_errors == 0

    def test_corrected_read_counts(self, memory):
        memory.write(42, PAYLOAD)
        flips = np.zeros(288, dtype=np.uint8)
        flips[5] = 1
        memory.device.inject_upset(42, flips)
        assert memory.read(42) == PAYLOAD
        assert memory.counters.corrected_errors == 1

    def test_due_raises_and_counts(self, memory):
        memory.write(42, PAYLOAD)
        flips = np.zeros(288, dtype=np.uint8)
        flips[[0, 100, 200]] = 1  # 3 scattered bits: DUE under TrioECC+CSC
        memory.device.inject_upset(42, flips)
        with pytest.raises(UncorrectableError) as excinfo:
            memory.read(42)
        assert excinfo.value.entry_index == 42
        assert memory.counters.uncorrectable_errors == 1

    def test_byte_error_corrected_transparently(self, memory):
        memory.write(7, PAYLOAD)
        flips = np.zeros(288, dtype=np.uint8)
        flips[80:88] = 1
        memory.device.inject_upset(7, flips)
        assert memory.read(7) == PAYLOAD

    def test_counters_snapshot(self, memory):
        memory.write(1, PAYLOAD)
        memory.read(1)
        snapshot = memory.counters.snapshot()
        assert snapshot["reads"] == 1 and snapshot["writes"] == 1


class TestScrub:
    def test_scrub_repairs_latent_errors(self, memory):
        memory.write(10, PAYLOAD)
        flips = np.zeros(288, dtype=np.uint8)
        flips[3] = 1
        memory.device.inject_upset(10, flips)

        corrected, uncorrectable = memory.scrub()
        assert corrected == 1 and uncorrectable == 0
        # The upset is gone: a second flip in the same entry now corrects
        # instead of accumulating into a double error.
        flips2 = np.zeros(288, dtype=np.uint8)
        flips2[150] = 1
        memory.device.inject_upset(10, flips2)
        assert memory.read(10) == PAYLOAD

    def test_scrub_without_repair_accumulates(self):
        device = SimulatedHBM2(HBM2Geometry.for_gpu(32))
        memory = ProtectedMemory(device, get_scheme("ni-secded"))
        memory.write(10, PAYLOAD)
        # Two strikes landing in the same beat (= same SEC-DED codeword)
        # with no scrub in between: a double error, uncorrectable.
        for position in (3, 40):
            flips = np.zeros(288, dtype=np.uint8)
            flips[position] = 1
            device.inject_upset(10, flips)
        with pytest.raises(UncorrectableError):
            memory.read(10)

    def test_scrub_leaves_due_entries(self, memory):
        memory.write(10, PAYLOAD)
        flips = np.zeros(288, dtype=np.uint8)
        flips[[0, 100, 200]] = 1
        memory.device.inject_upset(10, flips)
        corrected, uncorrectable = memory.scrub()
        assert corrected == 0 and uncorrectable == 1

    def test_scrub_counters(self, memory):
        memory.scrub()
        assert memory.counters.scrub_passes == 1

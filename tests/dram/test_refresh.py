"""Tests for refresh configuration and weak-cell semantics."""

import pytest

from repro.dram.refresh import DEFAULT_REFRESH_PERIOD_S, RefreshConfig, WeakCell


class TestRefreshConfig:
    def test_default_is_16ms(self):
        assert DEFAULT_REFRESH_PERIOD_S == 16e-3
        assert RefreshConfig().period_ms == 16.0

    def test_positive_period_required(self):
        with pytest.raises(ValueError):
            RefreshConfig(period_s=0.0)
        with pytest.raises(ValueError):
            RefreshConfig(period_s=-1.0)


class TestWeakCell:
    def test_leaks_under_slower_refresh(self):
        cell = WeakCell(0, 0, retention_s=10e-3)
        assert cell.leaks_under(RefreshConfig(16e-3))
        assert not cell.leaks_under(RefreshConfig(8e-3))

    def test_boundary_is_exclusive(self):
        cell = WeakCell(0, 0, retention_s=16e-3)
        assert not cell.leaks_under(RefreshConfig(16e-3))

    def test_corrupts_only_opposite_polarity(self):
        cell = WeakCell(0, 0, retention_s=1e-3, leaks_to=0)
        fast = RefreshConfig(0.5e-3)
        slow = RefreshConfig(16e-3)
        assert cell.corrupts(stored_bit=1, refresh=slow)
        assert not cell.corrupts(stored_bit=0, refresh=slow)
        assert not cell.corrupts(stored_bit=1, refresh=fast)

    def test_default_direction_is_one_to_zero(self):
        assert WeakCell(0, 0, retention_s=1e-3).leaks_to == 0

"""Tests for the sparse simulated HBM2 device."""

import numpy as np
import pytest

from repro.dram.device import SimulatedHBM2
from repro.dram.geometry import HBM2Geometry
from repro.dram.refresh import RefreshConfig, WeakCell


def _zeros(entry_index):
    return np.zeros(288, dtype=np.uint8)


def _ones(entry_index):
    return np.ones(288, dtype=np.uint8)


@pytest.fixture
def device():
    return SimulatedHBM2(HBM2Geometry.for_gpu(32))


class TestReadsAndWrites:
    def test_default_background_is_zero(self, device):
        assert not device.read_entry(12345).any()

    def test_write_all_sets_background(self, device):
        device.write_all(_ones)
        assert device.read_entry(99).all()

    def test_write_entry_overrides_background(self, device):
        device.write_all(_ones)
        bits = np.zeros(288, dtype=np.uint8)
        bits[7] = 1
        device.write_entry(5, bits)
        assert np.array_equal(device.read_entry(5), bits)
        assert device.read_entry(6).all()

    def test_write_entry_validates(self, device):
        with pytest.raises(ValueError):
            device.write_entry(0, np.zeros(100, dtype=np.uint8))
        with pytest.raises(ValueError):
            device.write_entry(2**40, np.zeros(288, dtype=np.uint8))


class TestUpsets:
    def test_upset_flips_bits(self, device):
        flips = np.zeros(288, dtype=np.uint8)
        flips[[3, 200]] = 1
        device.inject_upset(42, flips)
        read = device.read_entry(42)
        assert read[3] == 1 and read[200] == 1
        assert read.sum() == 2

    def test_upsets_compose_by_xor(self, device):
        flips = np.zeros(288, dtype=np.uint8)
        flips[3] = 1
        device.inject_upset(42, flips)
        device.inject_upset(42, flips)  # cancels
        assert not device.read_entry(42).any()
        assert device.upset_entries == 0

    def test_write_clears_upset(self, device):
        flips = np.zeros(288, dtype=np.uint8)
        flips[3] = 1
        device.inject_upset(42, flips)
        device.write_entry(42, np.zeros(288, dtype=np.uint8))
        assert not device.read_entry(42).any()

    def test_write_all_clears_upsets(self, device):
        flips = np.zeros(288, dtype=np.uint8)
        flips[3] = 1
        device.inject_upset(42, flips)
        device.write_all(_zeros)
        assert device.upset_entries == 0

    def test_zero_flip_ignored(self, device):
        device.inject_upset(1, np.zeros(288, dtype=np.uint8))
        assert device.upset_entries == 0


class TestWeakCells:
    def test_weak_cell_leaks_at_slow_refresh(self, device):
        device.write_all(_ones)
        device.install_weak_cell(WeakCell(10, 5, retention_s=8e-3))
        device.set_refresh(RefreshConfig(16e-3))
        assert device.read_entry(10)[5] == 0  # leaked 1 -> 0

    def test_weak_cell_safe_at_fast_refresh(self, device):
        device.write_all(_ones)
        device.install_weak_cell(WeakCell(10, 5, retention_s=8e-3))
        device.set_refresh(RefreshConfig(4e-3))
        assert device.read_entry(10)[5] == 1

    def test_leak_direction_matters(self, device):
        # Cell leaking to 0 does not corrupt a stored 0.
        device.install_weak_cell(WeakCell(10, 5, retention_s=1e-3))
        assert device.read_entry(10)[5] == 0

    def test_zero_to_one_leak(self, device):
        device.install_weak_cell(WeakCell(10, 5, retention_s=1e-3, leaks_to=1))
        assert device.read_entry(10)[5] == 1

    def test_remove_weak_cell(self, device):
        device.write_all(_ones)
        device.install_weak_cell(WeakCell(10, 5, retention_s=1e-3))
        device.remove_weak_cell(10, 5)
        assert device.read_entry(10)[5] == 1
        assert device.weak_cells == []


class TestScan:
    def test_scan_finds_only_real_mismatches(self, device):
        device.write_all(_ones)
        flips = np.zeros(288, dtype=np.uint8)
        flips[[1, 2]] = 1
        device.inject_upset(7, flips)
        device.install_weak_cell(WeakCell(9, 3, retention_s=1e-3))  # leaks
        device.install_weak_cell(WeakCell(11, 4, retention_s=1.0))  # strong
        mismatches = list(device.scan_mismatches(_ones))
        found = {m.entry_index: m.bit_positions for m in mismatches}
        assert found == {7: (1, 2), 9: (3,)}

    def test_scan_clean_device_is_empty(self, device):
        device.write_all(_ones)
        assert list(device.scan_mismatches(_ones)) == []

    def test_scan_visits_written_entries(self, device):
        device.write_all(_zeros)
        bits = np.zeros(288, dtype=np.uint8)
        bits[0] = 1
        device.write_entry(3, bits)
        mismatches = list(device.scan_mismatches(_zeros))
        assert mismatches[0].entry_index == 3

    def test_scan_is_sparse(self, device):
        # A 32GB device scan must not iterate a billion entries.
        device.write_all(_zeros)
        import time

        start = time.time()
        list(device.scan_mismatches(_zeros))
        assert time.time() - start < 0.1

"""Tests for the HBM2 address hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import BitAddress, EntryAddress, HBM2Geometry


@pytest.fixture(scope="module")
def geometry():
    return HBM2Geometry.for_gpu(32)


class TestCapacities:
    def test_paper_hierarchy_sizes(self, geometry):
        # Section 2.4: 512MB channels, 16 banks, 32 subarrays, 2KB rows.
        assert geometry.channel_bytes == 512 * 2**20
        assert geometry.banks_per_channel == 16
        assert geometry.subarrays_per_bank == 32
        assert geometry.columns_per_row * geometry.entry_bytes == 2048

    def test_total_capacity(self, geometry):
        assert geometry.data_gigabytes == 32.0
        assert geometry.total_entries == 2**30

    def test_subarray_is_1mb(self, geometry):
        assert geometry.entries_per_subarray * geometry.entry_bytes == 2**20

    def test_entry_bits_include_ecc(self, geometry):
        assert geometry.entry_bits == 288

    def test_for_gpu_validation(self):
        with pytest.raises(ValueError):
            HBM2Geometry.for_gpu(6)

    def test_16gb_variant(self):
        assert HBM2Geometry.for_gpu(16).data_gigabytes == 16.0


class TestAddressing:
    def test_entry_zero(self, geometry):
        address = geometry.decompose(0)
        assert address == EntryAddress(0, 0, 0, 0, 0, 0)

    def test_last_entry(self, geometry):
        address = geometry.decompose(geometry.total_entries - 1)
        assert address.stack == geometry.num_stacks - 1
        assert address.column == geometry.columns_per_row - 1

    def test_column_is_least_significant(self, geometry):
        assert geometry.decompose(1).column == 1
        assert geometry.decompose(geometry.columns_per_row).row == 1

    def test_out_of_range(self, geometry):
        with pytest.raises(ValueError):
            geometry.decompose(geometry.total_entries)
        with pytest.raises(ValueError):
            geometry.decompose(-1)

    @given(st.integers(min_value=0, max_value=2**30 - 1))
    @settings(max_examples=100)
    def test_compose_decompose_roundtrip(self, entry_index):
        geometry = HBM2Geometry.for_gpu(32)
        assert geometry.compose(geometry.decompose(entry_index)) == entry_index

    def test_same_subarray(self, geometry):
        per = geometry.entries_per_subarray
        assert geometry.same_subarray(0, per - 1)
        assert not geometry.same_subarray(0, per)


class TestBitAddress:
    def test_mat_is_byte_granular(self, geometry):
        entry = geometry.decompose(0)
        assert BitAddress(entry, 0).mat == 0
        assert BitAddress(entry, 7).mat == 0
        assert BitAddress(entry, 8).mat == 1
        assert BitAddress(entry, 287).mat == 35

"""Tracer span lifecycle, counters, worker merging and aggregates."""

import pytest

from repro.obs import (
    SpanRecord,
    Tracer,
    counter_totals,
    slowest_spans,
    stage_totals,
)


class FakeClock:
    """Deterministic perf_counter stand-in (advance by hand)."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestSpanLifecycle:
    def test_nesting_mirrors_the_call_stack(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.tick(1.0)
            with tracer.span("inner"):
                clock.tick(0.25)
            clock.tick(1.0)
        outer = next(r for r in tracer.records if r.name == "outer")
        inner = next(r for r in tracer.records if r.name == "inner")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.duration_s == pytest.approx(0.25)
        assert outer.duration_s == pytest.approx(2.25)
        # children finish (and are recorded) before their parents
        assert tracer.records.index(inner) < tracer.records.index(outer)

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = tracer.records
        assert (a.name, b.name, parent.name) == ("a", "b", "parent")
        assert a.parent_id == b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_attrs_are_captured(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("chunk", index=3, engine="columnar"):
            pass
        assert tracer.records[0].attrs == {"index": 3, "engine": "columnar"}

    def test_exception_marks_span_failed_and_closes_it(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        record = tracer.records[0]
        assert record.attrs["failed"] is True
        assert not tracer._stack  # nothing left dangling

    def test_start_offsets_are_relative_to_the_tracer_epoch(self):
        clock = FakeClock(start=500.0)
        tracer = Tracer(clock=clock)
        clock.tick(2.0)
        with tracer.span("late"):
            pass
        assert tracer.records[0].start_s == pytest.approx(2.0)


class TestCounters:
    def test_counters_attach_to_the_active_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            tracer.count(events=10)
            with tracer.span("inner"):
                tracer.count(events=5, sites=2)
            tracer.count(events=1)
        inner = next(r for r in tracer.records if r.name == "inner")
        outer = next(r for r in tracer.records if r.name == "outer")
        assert inner.counters == {"events": 5, "sites": 2}
        assert outer.counters == {"events": 11}

    def test_count_outside_any_span_is_a_noop(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count(events=99)  # must not raise
        assert tracer.records == []


class TestMerge:
    def _worker_records(self, worker_tagged=False):
        worker = Tracer(clock=FakeClock())
        with worker.span("cell", pattern="BIT"):
            worker.count(events=7)
            with worker.span("decode"):
                pass
        if worker_tagged:
            for record in worker.records:
                record.worker = "pid:777"
        return worker.records

    def test_merge_grafts_roots_under_the_active_span(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate") as active:
            parent.merge(self._worker_records(), worker="pid:41")
        ids = {r.span_id for r in parent.records}
        assert len(ids) == len(parent.records)  # renumbered, no collisions
        cell = next(r for r in parent.records if r.name == "cell")
        decode = next(r for r in parent.records if r.name == "decode")
        assert cell.parent_id == active.span_id
        assert decode.parent_id == cell.span_id
        assert cell.worker == decode.worker == "pid:41"
        assert cell.counters == {"events": 7}

    def test_merge_preserves_existing_worker_tags(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate"):
            parent.merge(self._worker_records(worker_tagged=True),
                         worker="pid:41")
        assert all(r.worker == "pid:777"
                   for r in parent.records if r.name != "evaluate")

    def test_merge_outside_a_span_creates_new_roots(self):
        parent = Tracer(clock=FakeClock())
        parent.merge(self._worker_records())
        cell = next(r for r in parent.records if r.name == "cell")
        assert cell.parent_id is None

    def test_merging_two_workers_keeps_both_trees_intact(self):
        parent = Tracer(clock=FakeClock())
        with parent.span("evaluate"):
            parent.merge(self._worker_records(), worker="pid:1")
            parent.merge(self._worker_records(), worker="pid:2")
        cells = [r for r in parent.records if r.name == "cell"]
        decodes = [r for r in parent.records if r.name == "decode"]
        assert {c.worker for c in cells} == {"pid:1", "pid:2"}
        for decode in decodes:
            owner = next(c for c in cells if c.span_id == decode.parent_id)
            assert owner.worker == decode.worker

    def test_merge_empty_is_a_noop(self):
        parent = Tracer(clock=FakeClock())
        parent.merge([])
        assert parent.records == []


class TestSerialization:
    def test_record_round_trips_through_dict(self):
        record = SpanRecord(span_id=4, parent_id=2, name="scan",
                            start_s=1.5, duration_s=0.5,
                            attrs={"index": 1}, counters={"records": 10},
                            worker="pid:9")
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_sparse_fields_are_omitted_from_the_encoding(self):
        record = SpanRecord(span_id=1, parent_id=None, name="top",
                            start_s=0.0, duration_s=1.0)
        encoded = record.to_dict()
        assert "attrs" not in encoded
        assert "counters" not in encoded
        assert "worker" not in encoded


class TestAggregates:
    def _records(self):
        return [
            SpanRecord(1, None, "synthesize", 0.0, 1.0,
                       counters={"events": 100}),
            SpanRecord(2, None, "scan", 1.0, 2.0, counters={"events": 50}),
            SpanRecord(3, None, "synthesize", 3.0, 0.5),
        ]

    def test_stage_totals_accumulate_per_name(self):
        totals = stage_totals(self._records())
        assert totals == {"synthesize": 1.5, "scan": 2.0}

    def test_stage_totals_names_preseed_and_order(self):
        totals = stage_totals(self._records(),
                              names=("synthesize", "scan", "postprocess"))
        assert list(totals) == ["synthesize", "scan", "postprocess"]
        assert totals["postprocess"] == 0.0

    def test_counter_totals_sum_and_filter_by_name(self):
        assert counter_totals(self._records()) == {"events": 150}
        assert counter_totals(self._records(), name="scan") == {"events": 50}

    def test_slowest_spans_sorted_and_capped(self):
        slow = slowest_spans(self._records(), "synthesize", top=1)
        assert [r.span_id for r in slow] == [1]

"""Trace artifact round trips and corruption detection."""

import json

import pytest

from repro.obs import SpanRecord, TraceCorrupt, read_trace, write_trace
from repro.obs.trace import TRACE_SCHEMA


def _records():
    return [
        SpanRecord(1, None, "campaign", 0.0, 2.0,
                   attrs={"engine": "columnar"},
                   counters={"events": 1000}),
        SpanRecord(2, 1, "chunk", 0.1, 1.5, attrs={"index": 0},
                   worker="pid:31"),
    ]


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, _records(), meta={"run_id": "r1"})
        header, records = read_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert header["kind"] == "trace"
        assert header["run_id"] == "r1"
        assert records == _records()

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, [])
        header, records = read_trace(path)
        assert records == []

    def test_write_creates_parent_directories(self, tmp_path):
        path = tmp_path / "runs" / "r1" / "trace.jsonl"
        write_trace(path, _records())
        assert read_trace(path)[1] == _records()

    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, _records())
        write_trace(path, _records()[:1])
        assert len(read_trace(path)[1]) == 1
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceCorrupt, match="unreadable"):
            read_trace(tmp_path / "absent.jsonl")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, _records())
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # trailer gone
        with pytest.raises(TraceCorrupt):
            read_trace(path)

    def test_flipped_byte_fails_the_checksum(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, _records())
        text = path.read_text().replace('"campaign"', '"campaignX"', 1)
        path.write_text(text)
        with pytest.raises(TraceCorrupt, match="checksum mismatch"):
            read_trace(path)

    def test_not_a_trace_artifact(self, tmp_path):
        path = tmp_path / "other.jsonl"
        import hashlib

        body = json.dumps({"kind": "cell"}) + "\n"
        trailer = json.dumps(
            {"sha256": hashlib.sha256(body.encode()).hexdigest()})
        path.write_text(body + trailer + "\n")
        with pytest.raises(TraceCorrupt, match="not a trace"):
            read_trace(path)

    def test_bad_span_record(self, tmp_path):
        import hashlib

        header = json.dumps({"kind": "trace", "schema": TRACE_SCHEMA})
        body = header + "\n" + json.dumps({"name": "no-id"}) + "\n"
        trailer = json.dumps(
            {"sha256": hashlib.sha256(body.encode()).hexdigest()})
        path = tmp_path / "trace.jsonl"
        path.write_text(body + trailer + "\n")
        with pytest.raises(TraceCorrupt, match="bad span record"):
            read_trace(path)

"""Span aggregation across a real process pool.

The acceptance-critical property: when the beam engine or the Monte Carlo
harness fans out over a genuine ``ProcessPoolExecutor``, the worker-side
spans come back over the result channel and merge into the parent trace —
correctly parented, pid-tagged, and with counters that reconcile with the
work actually done.
"""

import os

from repro.beam import run_statistics_campaign
from repro.core import get_scheme
from repro.errormodel.montecarlo import evaluate_scheme
from repro.obs import Tracer, counter_totals

EVENTS = 600
CHUNK = 128


class TestEngineAggregation:
    def test_worker_spans_merge_into_the_campaign_trace(self):
        result = run_statistics_campaign(EVENTS, seed=5, chunk=CHUNK,
                                         workers=2)
        names = {record.name for record in result.trace}
        assert {"campaign", "chunk", "synthesize", "scan",
                "postprocess"} <= names

        campaign = next(r for r in result.trace if r.name == "campaign")
        chunks = [r for r in result.trace if r.name == "chunk"]
        assert len(chunks) == (EVENTS + CHUNK - 1) // CHUNK
        assert all(c.parent_id == campaign.span_id for c in chunks)
        assert {c.attrs["index"] for c in chunks} == set(range(len(chunks)))

        # every chunk subtree is pid-tagged, and the tag is consistent
        # down the subtree (synthesize/scan ran where their chunk ran)
        by_id = {r.span_id: r for r in result.trace}
        for record in result.trace:
            if record.name in ("synthesize", "scan"):
                assert record.worker == by_id[record.parent_id].worker
        assert all(c.worker and c.worker.startswith("pid:") for c in chunks)

    def test_worker_counters_reconcile_with_the_workload(self):
        result = run_statistics_campaign(EVENTS, seed=5, chunk=CHUNK,
                                         workers=2)
        totals = counter_totals(result.trace, name="synthesize")
        assert totals["events"] == EVENTS
        assert result.pool_counters["pool_jobs"] == len(
            [r for r in result.trace if r.name == "chunk"])
        assert result.pool_counters["pool_completed"] \
            + result.pool_counters["pool_serial_fallback"] \
            == result.pool_counters["pool_jobs"]

    def test_fanned_trace_matches_serial_span_structure(self):
        serial = run_statistics_campaign(EVENTS, seed=5, chunk=CHUNK)
        fanned = run_statistics_campaign(EVENTS, seed=5, chunk=CHUNK,
                                         workers=2)
        def shape(trace):
            return sorted((r.name, r.attrs.get("index")) for r in trace
                          if r.name != "campaign")
        assert shape(serial.trace) == shape(fanned.trace)


class TestMonteCarloAggregation:
    def test_cell_spans_arrive_from_multiple_processes(self):
        tracer = Tracer()
        with tracer.span("evaluate"):
            evaluate_scheme(get_scheme("duet"), samples=300, seed=11,
                            workers=2, tracer=tracer)
        cells = [r for r in tracer.records if r.name == "cell"]
        assert len(cells) == 7  # one per Table-1 pattern
        evaluate = next(r for r in tracer.records if r.name == "evaluate")
        assert all(c.parent_id == evaluate.span_id for c in cells)
        assert all(c.worker and c.worker.startswith("pid:") for c in cells)
        # a 2-worker pool means at least one cell ran outside this process
        parent = f"pid:{os.getpid()}"
        assert any(c.worker != parent for c in cells)
        assert evaluate.counters["pool_jobs"] == 7

    def test_serial_tracing_tags_cells_with_the_parent_pid(self):
        tracer = Tracer()
        with tracer.span("evaluate"):
            evaluate_scheme(get_scheme("duet"), samples=300, seed=11,
                            tracer=tracer)
        cells = [r for r in tracer.records if r.name == "cell"]
        assert len(cells) == 7
        assert {c.worker for c in cells} == {f"pid:{os.getpid()}"}

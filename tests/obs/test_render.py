"""Trace-tree and slowest-span renderers."""

from repro.obs import SpanRecord, render_slowest, render_trace_tree


def _campaign_records(n_chunks=3):
    records = [SpanRecord(1, None, "campaign", 0.0, 10.0,
                          counters={"events": 100 * n_chunks})]
    next_id = 2
    for index in range(n_chunks):
        records.append(SpanRecord(next_id, 1, "chunk", float(index),
                                  1.0 + index, attrs={"index": index},
                                  worker=f"pid:{index}"))
        next_id += 1
    return records


class TestTree:
    def test_one_line_per_span_with_connectors(self):
        out = render_trace_tree(_campaign_records())
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("campaign")
        assert lines[1].startswith("├─ chunk")
        assert lines[3].startswith("└─ chunk")

    def test_attrs_counters_and_worker_tags_inline(self):
        out = render_trace_tree(_campaign_records())
        assert "events=300" in out
        assert "index=0" in out
        assert "[pid:0]" in out

    def test_durations_rendered_human_readable(self):
        records = [SpanRecord(1, None, "fast", 0.0, 0.002),
                   SpanRecord(2, None, "slow", 0.0, 200.0)]
        out = render_trace_tree(records)
        assert "2.00ms" in out
        assert "3.3m" in out

    def test_wide_nodes_elide_but_keep_first_and_slowest(self):
        records = _campaign_records(n_chunks=20)
        out = render_trace_tree(records, max_children=5)
        lines = out.splitlines()
        assert len(lines) == 1 + 5 + 1  # root + kept children + elision
        assert "… 15 more" in lines[-1]
        assert "index=0" in out    # first kept
        assert "index=19" in out   # slowest kept

    def test_max_children_zero_shows_everything(self):
        out = render_trace_tree(_campaign_records(n_chunks=20),
                                max_children=0)
        assert len(out.splitlines()) == 21
        assert "more" not in out

    def test_empty_records_render_empty(self):
        assert render_trace_tree([]) == ""


class TestSlowest:
    def test_table_sorted_slowest_first_with_index_labels(self):
        out = render_slowest(_campaign_records(), "chunk", top=2)
        lines = out.splitlines()
        assert lines[0] == "slowest chunk spans:"
        assert "chunk 2" in lines[2]
        assert "chunk 1" in lines[3]
        assert len(lines) == 4

    def test_no_matching_spans(self):
        out = render_slowest(_campaign_records(), "cell")
        assert "no 'cell' spans" in out

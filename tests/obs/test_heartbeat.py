"""Heartbeat rate limiting, formatting and the quiet-loop contract."""

from repro.obs import Heartbeat


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def _collecting(label="sweep", **kwargs):
    lines = []
    clock = FakeClock()
    beat = Heartbeat(label, callback=lines.append, clock=clock, **kwargs)
    return beat, clock, lines


class TestRateLimiting:
    def test_no_emission_before_the_interval(self):
        beat, clock, lines = _collecting(interval_s=5.0)
        for _ in range(100):
            clock.tick(0.01)
            beat.update(advance=1)
        assert lines == []

    def test_emits_once_per_interval_not_per_update(self):
        beat, clock, lines = _collecting(interval_s=5.0)
        for _ in range(10):
            clock.tick(1.0)
            beat.update(advance=1)
        assert len(lines) == 2  # at t=5 and t=10

    def test_interval_zero_disables_emission(self):
        beat, clock, lines = _collecting(interval_s=0)
        clock.tick(100.0)
        beat.update(advance=1)
        beat.close()
        assert lines == []
        assert not beat.enabled

    def test_interval_none_disables_emission(self):
        beat, clock, lines = _collecting(interval_s=None)
        clock.tick(100.0)
        beat.update(advance=1)
        assert lines == []


class TestFormatting:
    def test_line_shape_with_total_events_and_eta(self):
        beat, clock, lines = _collecting(total=20, unit="chunks",
                                         interval_s=5.0)
        clock.tick(5.0)
        beat.update(advance=10, events=5000)
        (line,) = lines
        assert line.startswith("[repro] sweep: ")
        assert "10/20 chunks" in line
        assert "5,000 events" in line
        assert "1,000 events/s" in line
        assert "ETA 5s" in line  # 10 left at 2 chunks/s

    def test_absolute_done_updates(self):
        beat, clock, lines = _collecting(total=8, interval_s=1.0)
        clock.tick(1.0)
        beat.update(done=3)
        assert "3/8" in lines[0]

    def test_no_eta_without_a_total(self):
        beat, clock, lines = _collecting(interval_s=1.0)
        clock.tick(1.0)
        beat.update(advance=4)
        assert "ETA" not in lines[0]


class TestEventEta:
    """With a ``total_events`` budget the ETA extrapolates from events
    folded, not jobs finished — job sizes vary, event counts don't."""

    def test_event_eta_preferred_over_job_eta(self):
        beat, clock, lines = _collecting(total=10, total_events=1000,
                                         interval_s=5.0)
        clock.tick(5.0)
        beat.update(advance=1, events=500)
        (line,) = lines
        # 500 events left at 100/s -> 5s; the job ETA would say 45s.
        assert "ETA 5s" in line

    def test_falls_back_to_job_eta_with_zero_events(self):
        beat, clock, lines = _collecting(total=10, total_events=1000,
                                         interval_s=5.0)
        clock.tick(5.0)
        beat.update(advance=5, events=0)
        (line,) = lines
        assert "ETA 5s" in line  # 5 jobs left at 1 job/s

    def test_no_eta_once_the_event_budget_is_met(self):
        beat, clock, lines = _collecting(total_events=100, interval_s=5.0)
        clock.tick(5.0)
        beat.update(advance=1, events=100)
        (line,) = lines
        assert "ETA" not in line

    def test_no_eta_with_zero_progress_on_both_axes(self):
        beat, clock, lines = _collecting(total=10, total_events=1000,
                                         interval_s=5.0)
        clock.tick(5.0)
        beat.update(advance=0, events=0)
        (line,) = lines
        assert "ETA" not in line


class TestZeroProgressEdges:
    """The first emission must never divide by zero — not with done == 0
    (no ETA denominator) and not with elapsed == 0 (no rate denominator),
    e.g. on a coarse clock or an instantly-emitting interval."""

    def test_emission_with_zero_done_and_events(self):
        beat, clock, lines = _collecting(total=10, interval_s=1.0)
        clock.tick(1.0)
        beat.update(advance=0, events=500)
        (line,) = lines
        assert "0/10" in line
        assert "ETA" not in line  # no completions yet -> no extrapolation

    def test_emission_with_zero_elapsed(self):
        beat, clock, lines = _collecting(total=10, interval_s=1.0)
        clock.tick(1.0)  # interval elapsed since _last_emit -> will emit
        beat._started = clock.now  # ...but elapsed-since-start == 0 exactly
        beat.update(advance=5, events=100)
        (line,) = lines
        assert "5/10" in line
        assert "100 events" in line
        assert "events/s" not in line  # rate is undefined, not infinite
        assert "ETA" not in line

    def test_close_with_nothing_done_after_an_emission(self):
        beat, clock, lines = _collecting(total=4, interval_s=1.0)
        clock.tick(1.0)
        beat.update(advance=0)
        beat.close()
        assert len(lines) == 2
        assert "done in" in lines[-1]


class TestClose:
    def test_close_stays_quiet_when_nothing_was_emitted(self):
        beat, clock, lines = _collecting(interval_s=5.0)
        clock.tick(1.0)
        beat.update(advance=3)
        beat.close()
        assert lines == []

    def test_close_emits_a_final_line_after_periodic_ones(self):
        beat, clock, lines = _collecting(total=4, interval_s=1.0)
        clock.tick(1.0)
        beat.update(advance=2)
        clock.tick(1.0)
        beat.update(advance=2)
        beat.close()
        assert len(lines) == 3
        assert "done in" in lines[-1]
        assert "ETA" not in lines[-1]


class TestStream:
    def test_writes_to_the_given_stream_without_a_callback(self):
        import io

        stream = io.StringIO()
        clock = FakeClock()
        beat = Heartbeat("sweep", interval_s=1.0, stream=stream, clock=clock)
        clock.tick(1.0)
        beat.update(advance=1)
        assert stream.getvalue().startswith("[repro] sweep: ")

"""Tests for the generic binary linear code machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.hsiao import HSIAO_72_64, hsiao_h_matrix
from repro.codes.linear import BinaryLinearCode

data_vectors = st.lists(
    st.integers(min_value=0, max_value=1), min_size=64, max_size=64
).map(lambda bits: np.array(bits, dtype=np.uint8))


@pytest.fixture(scope="module")
def code():
    return HSIAO_72_64


class TestConstruction:
    def test_dimensions(self, code):
        assert (code.n, code.k, code.r) == (72, 64, 8)

    def test_check_positions_are_unit_columns(self, code):
        for position in code.check_positions:
            assert code.h[:, position].sum() == 1

    def test_data_and_check_partition(self, code):
        together = sorted(
            code.data_positions.tolist() + code.check_positions.tolist()
        )
        assert together == list(range(72))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            BinaryLinearCode(np.zeros(8, dtype=np.uint8))

    def test_rejects_rank_deficient(self):
        h = np.zeros((8, 72), dtype=np.uint8)
        h[0, :] = 1
        with pytest.raises(ValueError):
            BinaryLinearCode(h)

    def test_rejects_wide_syndromes(self):
        with pytest.raises(ValueError):
            BinaryLinearCode(np.eye(63, dtype=np.uint8))


class TestEncode:
    @given(data_vectors)
    @settings(max_examples=30)
    def test_codewords_have_zero_syndrome(self, data):
        cw = HSIAO_72_64.encode(data)
        assert HSIAO_72_64.syndrome(cw) == 0

    @given(data_vectors)
    @settings(max_examples=30)
    def test_data_extraction_roundtrip(self, data):
        cw = HSIAO_72_64.encode(data)
        assert np.array_equal(HSIAO_72_64.extract_data(cw), data)

    def test_wrong_length_raises(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(63, dtype=np.uint8))

    def test_linearity(self, code):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 64, dtype=np.uint8)
        b = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(
            code.encode(a) ^ code.encode(b), code.encode(a ^ b)
        )


class TestSyndromes:
    def test_single_bit_error_yields_column(self, code):
        cw = code.encode(np.zeros(64, dtype=np.uint8))
        for position in (0, 17, 63, 64, 71):
            received = cw.copy()
            received[position] ^= 1
            assert code.syndrome(received) == int(code.column_syndromes[position])

    def test_syndrome_to_bit_table(self, code):
        for position in range(code.n):
            syndrome = int(code.column_syndromes[position])
            assert code.syndrome_to_bit[syndrome] == position

    def test_zero_syndrome_has_no_match(self, code):
        assert code.syndrome_to_bit[0] == -1

    def test_batch_packed(self, code):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 2, (20, 72), dtype=np.uint8)
        packed = code.syndromes_packed(words)
        for i in range(20):
            assert int(packed[i]) == code.syndrome(words[i])


class TestProperties:
    def test_hsiao_is_sec(self, code):
        assert code.columns_distinct_nonzero()

    def test_hsiao_is_odd_weight(self, code):
        assert code.columns_all_odd_weight()

    def test_hsiao_detects_doubles(self, code):
        assert code.detects_all_double_errors()

    def test_even_weight_code_fails_ded_check(self):
        # A (7,4) Hamming code has even-weight columns -> not DED.
        h = np.array(
            [[1, 0, 1, 0, 1, 0, 1],
             [0, 1, 1, 0, 0, 1, 1],
             [0, 0, 0, 1, 1, 1, 1]], dtype=np.uint8)
        code = BinaryLinearCode(h)
        assert code.columns_distinct_nonzero()
        assert not code.detects_all_double_errors()


class TestPairTable:
    def test_colliding_pairs_rejected(self, code):
        # In the Hsiao code adjacent-pair syndromes are NOT all unique.
        with pytest.raises(ValueError):
            code.build_pair_table([(2 * t, 2 * t + 1) for t in range(36)])

    def test_pair_aliasing_single_rejected(self):
        # Construct a tiny code where a pair equals a single column.
        h = np.array([[1, 0, 1, 1], [0, 1, 1, 0]], dtype=np.uint8)
        code = BinaryLinearCode(h)
        with pytest.raises(ValueError):
            code.build_pair_table([(0, 1)])  # e0^e1 = column 2


class TestColumnPermutation:
    def test_permuted_code_syndromes(self, code):
        perm = np.arange(72)[::-1].copy()
        permuted = code.column_permuted(perm)
        assert np.array_equal(
            permuted.column_syndromes, code.column_syndromes[::-1]
        )

    def test_invalid_permutation_rejected(self, code):
        with pytest.raises(ValueError):
            code.column_permuted(np.zeros(72, dtype=np.int64))


class TestSmallerGeometries:
    def test_hsiao_22_16(self):
        code = BinaryLinearCode(hsiao_h_matrix(num_check=6, num_data=16))
        assert (code.n, code.k) == (22, 16)
        assert code.columns_all_odd_weight()
        data = np.arange(16, dtype=np.uint8) % 2
        assert code.syndrome(code.encode(data)) == 0

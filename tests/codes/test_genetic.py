"""Tests for the genetic SEC-2bEC code search."""

import numpy as np
import pytest

from repro.codes.genetic import miscorrection_count, search_sec2bec
from repro.codes.sec2bec import SEC_2BEC_72_64, adjacent_pairs, validate_sec2bec
from repro.gf.gf2 import pack_bits


def _tiny_search(seed=2021):
    return search_sec2bec(population=8, generations=3, seed=seed)


class TestSearch:
    def test_returns_valid_code(self):
        result = _tiny_search()
        table = validate_sec2bec(result.code, adjacent_pairs())
        assert len(table.pairs) == 36

    def test_code_dimensions(self):
        result = _tiny_search()
        assert (result.code.n, result.code.k) == (72, 64)

    def test_identity_block_preserved(self):
        result = _tiny_search()
        assert result.code.check_positions.tolist() == list(range(64, 72))

    def test_deterministic_for_seed(self):
        first = _tiny_search(seed=99)
        second = _tiny_search(seed=99)
        assert np.array_equal(first.code.h, second.code.h)
        assert first.miscorrections == second.miscorrections

    def test_different_seeds_differ(self):
        first = _tiny_search(seed=1)
        second = _tiny_search(seed=2)
        assert not np.array_equal(first.code.h, second.code.h)

    def test_fitness_matches_reported(self):
        result = _tiny_search()
        columns = pack_bits(result.code.h.T)
        assert miscorrection_count(columns) == result.miscorrections

    def test_longer_search_does_not_regress(self):
        quick = search_sec2bec(population=8, generations=1, seed=5)
        longer = search_sec2bec(population=8, generations=6, seed=5)
        assert longer.miscorrections <= quick.miscorrections


class TestMiscorrectionCount:
    def test_paper_matrix_count(self):
        # A fixed regression value for the published Equation-3 matrix.
        columns = pack_bits(SEC_2BEC_72_64.h.T)
        assert miscorrection_count(columns) == 553

    def test_ga_codes_in_same_ballpark(self):
        result = search_sec2bec(population=16, generations=10, seed=3)
        # The non-aligned double-bit space has 2,520 patterns; a valid code
        # should alias well under half of them.
        assert result.miscorrections < 1200

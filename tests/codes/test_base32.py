"""Tests for the Crockford Base32 H-matrix codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.base32 import (
    CROCKFORD_ALPHABET,
    b32_decode_int,
    b32_encode_int,
    decode_h_matrix,
    encode_h_matrix,
)
from repro.codes.sec2bec import PAPER_H_ROWS_BASE32


class TestAlphabet:
    def test_length(self):
        assert len(CROCKFORD_ALPHABET) == 32

    def test_excludes_confusable_letters(self):
        for excluded in "ILOU":
            assert excluded not in CROCKFORD_ALPHABET


class TestDecode:
    def test_digits(self):
        assert b32_decode_int("0") == 0
        assert b32_decode_int("10") == 32
        assert b32_decode_int("Z") == 31

    def test_case_insensitive(self):
        assert b32_decode_int("z") == 31

    def test_confusable_aliases(self):
        assert b32_decode_int("O") == 0
        assert b32_decode_int("I") == 1
        assert b32_decode_int("L") == 1

    def test_hyphens_ignored(self):
        assert b32_decode_int("1-0") == 32

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            b32_decode_int("U")


class TestEncode:
    def test_simple(self):
        assert b32_encode_int(32, 2) == "10"
        assert b32_encode_int(0, 3) == "000"

    def test_overflow(self):
        with pytest.raises(ValueError):
            b32_encode_int(32, 1)

    def test_negative(self):
        with pytest.raises(ValueError):
            b32_encode_int(-1, 4)

    @given(st.integers(min_value=0, max_value=2**75 - 1))
    def test_roundtrip(self, value):
        assert b32_decode_int(b32_encode_int(value, 15)) == value


class TestMatrixCodec:
    def test_paper_rows_fit_72_bits(self):
        matrix = decode_h_matrix(PAPER_H_ROWS_BASE32, num_cols=72)
        assert matrix.shape == (8, 72)

    def test_matrix_roundtrip(self):
        matrix = decode_h_matrix(PAPER_H_ROWS_BASE32, num_cols=72)
        encoded = encode_h_matrix(matrix)
        assert np.array_equal(decode_h_matrix(encoded, num_cols=72), matrix)

    def test_msb_first_convention(self):
        # "1000...0" in base32 for an 8-bit row: value 128 -> bit 0 (leftmost).
        matrix = decode_h_matrix([b32_encode_int(128, 2)], num_cols=8)
        assert matrix[0].tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

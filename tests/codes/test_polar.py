"""Shortened polar code: construction, syndrome-SC decode, batch oracle."""

import numpy as np
import pytest

from repro.codes.polar import POLAR_512_288, PolarCode, crc8_matrix, _polar_transform

CODE = POLAR_512_288


def _crc8_reference(bits):
    """Straightforward shift-register CRC-8 (poly 0x07, init 0)."""
    crc = 0
    for bit in bits:
        crc ^= int(bit) << 7
        crc <<= 1
        if crc & 0x100:
            crc ^= 0x107
    return np.array([(crc >> row) & 1 for row in range(8)], dtype=np.uint8)


class TestConstruction:
    def test_dimensions(self):
        assert CODE.n == 512
        assert CODE.transmitted == 288
        assert CODE.k == 264
        assert CODE.info_positions.size == 264
        assert int(CODE.frozen_mask.sum()) == 512 - 264

    def test_shortened_tail_is_frozen(self):
        assert bool(CODE.frozen_mask[288:].all())

    def test_shortening_is_exact(self):
        # Freezing the tail leaves forces the transmitted tail to zero, so
        # truncating to 288 bits loses nothing.
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        u = np.zeros(512, dtype=np.uint8)
        u[CODE.info_positions[:256]] = data
        u[CODE.info_positions[256:]] = CODE.crc(data)
        assert not _polar_transform(u)[288:].any()

    def test_crc_matrix_matches_shift_register(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            message = rng.integers(0, 2, 256, dtype=np.uint8)
            assert np.array_equal(CODE.crc(message), _crc8_reference(message))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PolarCode(n=100)
        with pytest.raises(ValueError):
            PolarCode(n=512, transmitted=600)
        with pytest.raises(ValueError):
            PolarCode(n=256, transmitted=260, data_bits=256)


class TestScalarDecode:
    def test_clean_roundtrip(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        e_hat, decoded, crc_ok = CODE.decode(CODE.encode(data))
        assert crc_ok
        assert not e_hat.any()
        assert np.array_equal(decoded, data)

    def test_correction_is_codeword_independent(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        codeword = CODE.encode(data)
        for _ in range(10):
            error = (rng.random(288) < 0.01).astype(np.uint8)
            e_zero, _, ok_zero = CODE.decode(error)
            e_code, _, ok_code = CODE.decode(codeword ^ error)
            assert np.array_equal(e_zero, e_code)
            assert ok_zero == ok_code


class TestBatchDecode:
    def test_single_bit_errors_never_escape_silently(self):
        errors = np.eye(288, dtype=np.uint8)
        e_hat, data, crc_fail = CODE.decode_batch(errors)
        sdc = ~crc_fail & data.any(axis=1)
        assert not sdc.any()
        corrected = (~crc_fail & e_hat.any(axis=1)).sum()
        assert corrected + crc_fail.sum() == 288
        assert corrected >= 288 - 60  # most singles correct outright

    def test_batch_is_bit_identical_to_scalar(self):
        rng = np.random.default_rng(4)
        errors = np.concatenate([
            (rng.random((24, 288)) < 0.01).astype(np.uint8),
            (rng.random((12, 288)) < 0.10).astype(np.uint8),
        ])
        e_batch, data_batch, fail_batch = CODE.decode_batch(errors)
        for i in range(errors.shape[0]):
            e_ref, data_ref, crc_ok = CODE.decode(errors[i])
            assert np.array_equal(e_batch[i], e_ref), i
            assert np.array_equal(data_batch[i], data_ref), i
            assert bool(fail_batch[i]) == (not crc_ok), i

"""Tests for the Hsiao minimum-odd-weight SEC-DED construction."""

import numpy as np
import pytest

from repro.codes.hsiao import HSIAO_72_64, hsiao_code, hsiao_h_matrix


class TestStructure:
    def test_shape(self):
        assert hsiao_h_matrix().shape == (8, 72)

    def test_all_columns_distinct(self):
        matrix = hsiao_h_matrix()
        columns = {tuple(matrix[:, i]) for i in range(72)}
        assert len(columns) == 72

    def test_all_columns_odd_weight(self):
        weights = hsiao_h_matrix().sum(axis=0)
        assert np.all(weights % 2 == 1)

    def test_uses_all_weight3_columns(self):
        weights = hsiao_h_matrix().sum(axis=0)
        assert int((weights == 3).sum()) == 56  # C(8,3)

    def test_completes_with_weight5(self):
        weights = hsiao_h_matrix().sum(axis=0)
        assert int((weights == 5).sum()) == 8

    def test_identity_block_at_tail(self):
        matrix = hsiao_h_matrix()
        assert np.array_equal(matrix[:, 64:], np.eye(8, dtype=np.uint8))

    def test_row_weights_balanced(self):
        # Hsiao's criterion: data-column row weights within a small spread.
        row_weights = hsiao_h_matrix()[:, :64].sum(axis=1)
        assert row_weights.max() - row_weights.min() <= 2

    def test_deterministic(self):
        assert np.array_equal(hsiao_h_matrix(), hsiao_h_matrix())


class TestCodeProperties:
    def test_sec_ded(self):
        assert HSIAO_72_64.columns_distinct_nonzero()
        assert HSIAO_72_64.detects_all_double_errors()

    def test_corrects_every_single_bit_error(self):
        code = hsiao_code()
        data = np.random.default_rng(0).integers(0, 2, 64, dtype=np.uint8)
        cw = code.encode(data)
        for position in range(72):
            received = cw.copy()
            received[position] ^= 1
            syndrome = code.syndrome(received)
            assert code.syndrome_to_bit[syndrome] == position

    def test_double_errors_never_alias_singles(self):
        code = hsiao_code()
        singles = set(code.column_syndromes.tolist())
        rng = np.random.default_rng(1)
        for _ in range(500):
            i, j = rng.choice(72, size=2, replace=False)
            doubled = int(code.column_syndromes[i] ^ code.column_syndromes[j])
            assert doubled not in singles
            assert doubled != 0


class TestOtherGeometries:
    def test_insufficient_columns_raises(self):
        with pytest.raises(ValueError):
            hsiao_h_matrix(num_check=4, num_data=64)  # only 7 odd cols exist

    @pytest.mark.parametrize("checks,data", [(6, 16), (7, 32), (8, 64)])
    def test_standard_geometries(self, checks, data):
        code = hsiao_code(num_check=checks, num_data=data)
        assert code.columns_distinct_nonzero()
        assert code.columns_all_odd_weight()

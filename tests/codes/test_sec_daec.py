"""SEC-DAEC: searched single + adjacent-double error correcting code."""

import numpy as np
import pytest

from repro.codes.sec_daec import (
    SEC_DAEC_72_64,
    SEC_DAEC_PAIRS,
    adjacent_pair_list,
    sec_daec_code,
    sec_daec_h_matrix,
    search_sec_daec_columns,
)
from repro.gf.gf2 import gf2_rank


class TestSearch:
    def test_columns_are_distinct_nonzero(self):
        columns = search_sec_daec_columns()
        assert len(columns) == 72
        assert 0 not in columns
        assert len(set(columns)) == 72

    def test_adjacent_xors_are_fresh_syndromes(self):
        # The DAEC condition: singles and adjacent pairs share one injective
        # syndrome map — 72 + 71 distinct nonzero values.
        columns = search_sec_daec_columns()
        pairs = [columns[i] ^ columns[i + 1] for i in range(71)]
        syndromes = columns + pairs
        assert 0 not in syndromes
        assert len(set(syndromes)) == 143

    def test_search_is_deterministic(self):
        assert np.array_equal(sec_daec_h_matrix(), sec_daec_h_matrix())

    def test_too_small_syndrome_space_rejected(self):
        with pytest.raises(ValueError):
            search_sec_daec_columns(num_check=4, num_columns=16)


class TestCode:
    def test_structure(self):
        assert SEC_DAEC_72_64.h.shape == (8, 72)
        assert gf2_rank(SEC_DAEC_72_64.h) == 8
        assert SEC_DAEC_72_64.columns_distinct_nonzero()

    def test_pair_table_covers_sliding_window(self):
        assert SEC_DAEC_PAIRS.pairs == tuple(adjacent_pair_list())
        for index, (low, high) in enumerate(SEC_DAEC_PAIRS.pairs):
            syndrome = int(
                SEC_DAEC_72_64.column_syndromes[low]
                ^ SEC_DAEC_72_64.column_syndromes[high]
            )
            assert SEC_DAEC_PAIRS.syndrome_to_pair[syndrome] == index

    def test_single_errors_resolve_to_their_bit(self):
        code = SEC_DAEC_72_64
        for position in range(72):
            syndrome = int(code.column_syndromes[position])
            assert code.syndrome_to_bit[syndrome] == position

    def test_smaller_instance_also_searches(self):
        code = sec_daec_code(num_check=7, num_columns=40)
        assert code.columns_distinct_nonzero()
        code.build_pair_table(adjacent_pair_list(40))  # raises on aliasing

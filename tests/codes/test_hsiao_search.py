"""Balanced-row Hsiao SEC-DED search: exhaustive + greedy variants."""

import numpy as np
import pytest

from repro.codes.hsiao import (
    HSIAO_72_64,
    hsiao_search_code,
    hsiao_search_h_matrix,
    row_weight_spread,
)
from repro.gf.gf2 import gf2_rank


class TestSearchMatrix:
    def test_variant0_reproduces_the_paper_matrix(self):
        assert np.array_equal(hsiao_search_h_matrix(variant=0), HSIAO_72_64.h)

    def test_variant1_is_distinct_but_equally_balanced(self):
        h0 = hsiao_search_h_matrix(variant=0)
        h1 = hsiao_search_h_matrix(variant=1)
        assert not np.array_equal(h0, h1)
        assert row_weight_spread(h1) == row_weight_spread(h0) == 0

    @pytest.mark.parametrize("variant", [0, 1, 2])
    def test_variants_are_valid_sec_ded(self, variant):
        code = hsiao_search_code(variant=variant)
        assert code.h.shape == (8, 72)
        assert gf2_rank(code.h) == 8
        assert code.columns_distinct_nonzero()
        assert code.columns_all_odd_weight()
        assert code.detects_all_double_errors()

    def test_exhaustive_small_instance_is_optimally_balanced(self):
        # (22,16): 6 weight-1 + 16 of the 20 weight-3 columns; C(20,16)=4845
        # subsets fit the exhaustive budget, so the search is provably the
        # best-balanced choice — no greedy pick can beat its spread.
        exhaustive = hsiao_search_h_matrix(num_check=6, num_data=16)
        greedy = hsiao_search_h_matrix(
            num_check=6, num_data=16, exhaustive_limit=0
        )
        assert row_weight_spread(exhaustive) <= row_weight_spread(greedy)
        assert row_weight_spread(exhaustive) <= 1

    def test_small_instance_is_a_working_code(self):
        code = hsiao_search_code(num_check=6, num_data=16)
        assert code.columns_distinct_nonzero()
        assert code.columns_all_odd_weight()
        data = np.arange(16, dtype=np.uint8) % 2
        codeword = code.encode(data)
        assert np.array_equal(code.extract_data(codeword), data)
        assert code.syndrome(codeword) == 0

    def test_minimum_distance_probe(self):
        # SEC-DED: any <=3-column sum is nonzero (distance >= 4).
        code = hsiao_search_code(variant=1)
        rng = np.random.default_rng(5)
        columns = code.h.T
        for _ in range(300):
            picks = rng.choice(72, size=3, replace=False)
            assert columns[picks].sum(axis=0).__mod__(2).any()

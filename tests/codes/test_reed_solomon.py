"""Tests for the Reed-Solomon encoder and the three decoder styles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import ReedSolomonCode, RSDecodeStatus


@pytest.fixture(scope="module")
def rs18():
    return ReedSolomonCode(18, 16)


@pytest.fixture(scope="module")
def rs36():
    return ReedSolomonCode(36, 32)


def _corrupt(rng, codeword, count):
    received = codeword.copy()
    positions = rng.choice(codeword.size, size=count, replace=False)
    for position in positions:
        received[position] ^= rng.integers(1, 256)
    return received


class TestConstruction:
    def test_dimensions(self, rs18, rs36):
        assert (rs18.n, rs18.k, rs18.r) == (18, 16, 2)
        assert (rs36.n, rs36.k, rs36.r) == (36, 32, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(10, 10)
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 200)

    def test_generator_degree(self, rs36):
        assert rs36.generator.degree == 4


class TestEncode:
    def test_codeword_has_zero_syndromes(self, rs18):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 16, dtype=np.uint8)
        assert rs18.is_codeword(rs18.encode(data))

    def test_systematic_placement(self, rs18):
        data = np.arange(16, dtype=np.uint8)
        cw = rs18.encode(data)
        assert np.array_equal(rs18.extract_data(cw), data)

    def test_linearity(self, rs36):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 32, dtype=np.uint8)
        b = rng.integers(0, 256, 32, dtype=np.uint8)
        assert np.array_equal(rs36.encode(a) ^ rs36.encode(b), rs36.encode(a ^ b))

    def test_wrong_length(self, rs18):
        with pytest.raises(ValueError):
            rs18.encode(np.zeros(15, dtype=np.uint8))

    def test_syndromes_length_check(self, rs18):
        with pytest.raises(ValueError):
            rs18.syndromes(np.zeros(17, dtype=np.uint8))


class TestOneShotSSC:
    def test_clean(self, rs18):
        cw = rs18.encode(np.zeros(16, dtype=np.uint8))
        assert rs18.decode_one_shot_ssc(cw).status is RSDecodeStatus.CLEAN

    def test_corrects_every_single_symbol_error(self, rs18):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, 16, dtype=np.uint8)
        cw = rs18.encode(data)
        for position in range(18):
            for value in (1, 0x80, 0xFF):
                received = cw.copy()
                received[position] ^= value
                result = rs18.decode_one_shot_ssc(received)
                assert result.status is RSDecodeStatus.CORRECTED
                assert np.array_equal(result.codeword, cw)
                assert result.error_locations == (position,)
                assert result.error_values == (value,)

    def test_requires_two_check_symbols(self, rs36):
        with pytest.raises(ValueError):
            rs36.decode_one_shot_ssc(np.zeros(36, dtype=np.uint8))

    def test_double_errors_not_silently_wrong_often(self, rs18):
        # SSC has no guaranteed double detection; but many double errors
        # point outside the codeword (255 locators vs n=18) and raise a DUE.
        rng = np.random.default_rng(3)
        cw = rs18.encode(rng.integers(0, 256, 16, dtype=np.uint8))
        detected = 0
        for _ in range(300):
            result = rs18.decode_one_shot_ssc(_corrupt(rng, cw, 2))
            if result.status is RSDecodeStatus.DETECTED:
                detected += 1
        assert detected > 250  # most doubles land outside [0, 18)


class TestDSDPlus:
    def test_clean(self, rs36):
        cw = rs36.encode(np.zeros(32, dtype=np.uint8))
        assert rs36.decode_dsd_plus(cw).status is RSDecodeStatus.CLEAN

    def test_corrects_all_single_symbol_errors(self, rs36):
        rng = np.random.default_rng(4)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        for position in range(36):
            received = cw.copy()
            received[position] ^= 0x5A
            result = rs36.decode_dsd_plus(received)
            assert result.status is RSDecodeStatus.CORRECTED
            assert np.array_equal(result.codeword, cw)

    def test_detects_all_double_symbol_errors_sampled(self, rs36):
        rng = np.random.default_rng(5)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        for _ in range(500):
            result = rs36.decode_dsd_plus(_corrupt(rng, cw, 2))
            assert result.status is RSDecodeStatus.DETECTED

    def test_detects_nearly_all_triples(self, rs36):
        rng = np.random.default_rng(6)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        sdc = sum(
            1 for _ in range(400)
            if rs36.decode_dsd_plus(_corrupt(rng, cw, 3)).status
            is RSDecodeStatus.CORRECTED
        )
        assert sdc == 0  # >99.999964% triple detection

    def test_requires_four_check_symbols(self, rs18):
        with pytest.raises(ValueError):
            rs18.decode_dsd_plus(np.zeros(18, dtype=np.uint8))


class TestAlgebraic:
    def test_dsc_corrects_double_errors(self, rs36):
        rng = np.random.default_rng(7)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        for _ in range(100):
            result = rs36.decode_algebraic(_corrupt(rng, cw, 2))
            assert result.status is RSDecodeStatus.CORRECTED
            assert np.array_equal(result.codeword, cw)

    def test_dsc_detects_triples_mostly(self, rs36):
        rng = np.random.default_rng(8)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        outcomes = [
            rs36.decode_algebraic(_corrupt(rng, cw, 3)).status for _ in range(100)
        ]
        assert outcomes.count(RSDecodeStatus.DETECTED) >= 95

    def test_ssc_tsd_mode(self, rs36):
        # max_errors=1 models SSC-TSD: corrects 1, detects up to 3.
        rng = np.random.default_rng(9)
        cw = rs36.encode(rng.integers(0, 256, 32, dtype=np.uint8))
        single = _corrupt(rng, cw, 1)
        assert rs36.decode_algebraic(single, max_errors=1).status is (
            RSDecodeStatus.CORRECTED
        )
        for count in (2, 3):
            for _ in range(150):
                result = rs36.decode_algebraic(_corrupt(rng, cw, count),
                                               max_errors=1)
                assert result.status is RSDecodeStatus.DETECTED

    def test_agrees_with_one_shot_on_singles(self, rs18):
        rng = np.random.default_rng(10)
        cw = rs18.encode(rng.integers(0, 256, 16, dtype=np.uint8))
        for _ in range(50):
            received = _corrupt(rng, cw, 1)
            one_shot = rs18.decode_one_shot_ssc(received)
            algebraic = rs18.decode_algebraic(received)
            assert one_shot.status == algebraic.status
            assert np.array_equal(one_shot.codeword, algebraic.codeword)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_random_double_corruption_roundtrip(self, seed):
        rs = ReedSolomonCode(36, 32)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, 32, dtype=np.uint8)
        cw = rs.encode(data)
        result = rs.decode_algebraic(_corrupt(rng, cw, 2))
        assert result.status is RSDecodeStatus.CORRECTED
        assert np.array_equal(rs.extract_data(result.codeword), data)

"""Shortened (144, 128) binary BCH DEC code: structure and distance."""

import numpy as np
import pytest

from repro.codes.bch import (
    BCH_DEC_144_128,
    BCH_DEC_PAIRS,
    bch_dec_code,
    bch_dec_h_matrix,
    bch_dec_pair_table,
)
from repro.gf.gf256 import EXP_TABLE
from repro.gf.gf2 import gf2_rank


class TestMatrix:
    def test_shape_and_rank(self):
        assert BCH_DEC_144_128.h.shape == (16, 144)
        assert gf2_rank(BCH_DEC_144_128.h) == 16
        assert BCH_DEC_144_128.k == 128

    def test_columns_follow_the_bch_construction(self):
        h = bch_dec_h_matrix()
        for j in (0, 1, 7, 100, 143):
            alpha_j = int(EXP_TABLE[j % 255])
            alpha_3j = int(EXP_TABLE[(3 * j) % 255])
            column = h[:, j]
            assert sum(int(column[b]) << b for b in range(8)) == alpha_j
            assert sum(int(column[8 + b]) << b for b in range(8)) == alpha_3j

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            bch_dec_h_matrix(16)
        with pytest.raises(ValueError):
            bch_dec_h_matrix(256)


class TestDistance:
    def test_sec(self):
        assert BCH_DEC_144_128.columns_distinct_nonzero()

    def test_all_pairs_table_exists(self):
        # build_pair_table raises if any of the C(144,2) pair syndromes
        # collides with a single or another pair — its existence IS the
        # proof that d >= 5 holds pairwise.
        assert len(BCH_DEC_PAIRS.pairs) == 144 * 143 // 2

    def test_minimum_distance_probe_weight4(self):
        # d >= 5 also forbids any four columns summing to zero; probe a
        # random sample of quadruples.
        rng = np.random.default_rng(11)
        columns = BCH_DEC_144_128.h.T.astype(np.int64)
        for _ in range(500):
            picks = rng.choice(144, size=4, replace=False)
            assert (columns[picks].sum(axis=0) % 2).any()

    def test_shorter_instance(self):
        code = bch_dec_code(40)
        assert code.h.shape == (16, 40)
        assert code.columns_distinct_nonzero()
        bch_dec_pair_table(code)  # raises on any aliasing

"""Tests for the paper's Equation-3 SEC-2bEC code."""

import numpy as np
import pytest

from repro.codes.base32 import encode_h_matrix
from repro.codes.linear import BinaryLinearCode
from repro.codes.sec2bec import (
    PAPER_H_ROWS_BASE32,
    SEC_2BEC_72_64,
    adjacent_pairs,
    interleave_column_permutation,
    paper_pair_table,
    stride4_pairs,
    validate_sec2bec,
)
from repro.gf.gf2 import pack_bits


class TestPaperMatrix:
    def test_embeds_eight_rows(self):
        assert len(PAPER_H_ROWS_BASE32) == 8

    def test_roundtrips_to_paper_strings(self):
        assert encode_h_matrix(SEC_2BEC_72_64.h) == PAPER_H_ROWS_BASE32

    def test_check_bits_at_64_71(self):
        assert SEC_2BEC_72_64.check_positions.tolist() == list(range(64, 72))

    def test_single_error_correction(self):
        assert SEC_2BEC_72_64.columns_distinct_nonzero()

    def test_sec_ded_fallback(self):
        # "constrained to operate as a SEC-DED code if 2b symbol correction
        # is not attempted" — odd-weight columns guarantee it.
        assert SEC_2BEC_72_64.columns_all_odd_weight()
        assert SEC_2BEC_72_64.detects_all_double_errors()

    def test_aligned_pair_syndromes_unique(self):
        table = paper_pair_table()
        syndromes = [
            int(SEC_2BEC_72_64.column_syndromes[low]
                ^ SEC_2BEC_72_64.column_syndromes[high])
            for low, high in table.pairs
        ]
        assert len(set(syndromes)) == 36

    def test_pair_syndromes_disjoint_from_singles(self):
        singles = set(SEC_2BEC_72_64.column_syndromes.tolist())
        table = paper_pair_table()
        for low, high in table.pairs:
            pair = int(SEC_2BEC_72_64.column_syndromes[low]
                       ^ SEC_2BEC_72_64.column_syndromes[high])
            assert pair not in singles

    def test_corrects_all_aligned_pairs(self):
        code = SEC_2BEC_72_64
        table = paper_pair_table()
        cw = code.encode(np.zeros(64, dtype=np.uint8))
        for index, (low, high) in enumerate(table.pairs):
            received = cw.copy()
            received[low] ^= 1
            received[high] ^= 1
            syndrome = code.syndrome(received)
            assert table.syndrome_to_pair[syndrome] == index


class TestPairHelpers:
    def test_adjacent_pairs_partition(self):
        covered = sorted(bit for pair in adjacent_pairs() for bit in pair)
        assert covered == list(range(72))

    def test_stride4_pairs_partition(self):
        covered = sorted(bit for pair in stride4_pairs() for bit in pair)
        assert covered == list(range(72))

    def test_stride4_pairs_are_stride4(self):
        for low, high in stride4_pairs():
            assert high - low == 4


class TestInterleavePermutation:
    def test_is_permutation(self):
        perm = interleave_column_permutation()
        assert sorted(perm.tolist()) == list(range(72))

    def test_maps_stride4_to_adjacent(self):
        perm = interleave_column_permutation()
        for low, high in stride4_pairs():
            assert perm[high] - perm[low] == 1
            assert perm[low] % 2 == 0

    def test_swizzled_code_validates(self):
        swizzled = SEC_2BEC_72_64.column_permuted(interleave_column_permutation())
        table = validate_sec2bec(swizzled, stride4_pairs())
        assert len(table.pairs) == 36

    def test_swizzled_check_bits_stay_in_check_byte(self):
        swizzled = SEC_2BEC_72_64.column_permuted(interleave_column_permutation())
        assert sorted(swizzled.check_positions.tolist()) == list(range(64, 72))


class TestValidation:
    def test_rejects_even_weight_columns(self):
        h = np.eye(8, dtype=np.uint8)
        h = np.concatenate([h, h ^ 1], axis=1)[:, :16]
        code_h = np.concatenate(
            [h, np.roll(np.eye(8, dtype=np.uint8), 1, axis=0)], axis=1
        )
        # Build something full-rank but with even-weight columns present.
        code = BinaryLinearCode(np.concatenate(
            [np.eye(8, dtype=np.uint8),
             np.ones((8, 2), dtype=np.uint8)], axis=1))
        with pytest.raises(ValueError):
            validate_sec2bec(code, [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)])

    def test_rejects_non_partition(self):
        with pytest.raises(ValueError):
            validate_sec2bec(SEC_2BEC_72_64, [(0, 1)] * 36)

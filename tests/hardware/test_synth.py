"""Structural tests of the Table-3 circuit generators.

Absolute gate counts depend on our technology weights, so the assertions
pin down the *relationships* the paper's Table 3 rests on: which circuits
are bigger/slower than which, and how the Perf./Eff. points trade off.
"""

import pytest

from repro.codes.hsiao import hsiao_code
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.sec2bec import SEC_2BEC_72_64, paper_pair_table
from repro.hardware.synth import (
    binary_decoder,
    binary_encoder,
    rs_encoder,
    rs_ssc_decoder,
    ssc_dsd_decoder,
    table3_rows,
)


@pytest.fixture(scope="module")
def rows():
    return table3_rows()


class TestDesignPoints:
    def test_efficient_encoders_smaller_but_slower(self, rows):
        encoders, _ = rows
        for row in encoders:
            assert row.eff.area < row.perf.area, row.name
            assert row.eff.delay_ns > row.perf.delay_ns, row.name

    def test_efficient_decoders_smaller_but_slower(self, rows):
        _, decoders = rows
        for row in decoders:
            assert row.eff.area < row.perf.area, row.name
            assert row.eff.delay_ns > row.perf.delay_ns, row.name


class TestEncoderOrdering:
    def test_sec2bec_encoder_costs_more_than_hsiao(self, rows):
        encoders, _ = rows
        by_name = {row.name: row for row in encoders}
        assert (by_name["SEC-2bEC (Duet/Trio)"].perf.area
                > by_name["SEC-DED"].perf.area)

    def test_rs_encoders_cost_most(self, rows):
        encoders, _ = rows
        by_name = {row.name: row for row in encoders}
        assert by_name["SSC-DSD+"].perf.area > by_name["I:SSC"].perf.area
        assert by_name["I:SSC"].perf.area > by_name["SEC-DED"].perf.area

    def test_dsd_encoder_overhead_magnitude(self, rows):
        # Paper: the SSC-DSD+ encoder is roughly 2-4x SEC-DED.
        encoders, _ = rows
        by_name = {row.name: row for row in encoders}
        ratio = by_name["SSC-DSD+"].perf.area / by_name["SEC-DED"].perf.area
        assert 2.0 < ratio < 8.0


class TestDecoderOrdering:
    def test_paper_decoder_area_order(self, rows):
        _, decoders = rows
        by_name = {row.name: row for row in decoders}
        assert (by_name["SEC-DED"].perf.area
                < by_name["DuetECC"].perf.area
                < by_name["TrioECC"].perf.area)
        assert by_name["SSC-DSD+"].perf.area == max(
            row.perf.area for row in decoders
        )

    def test_trio_overhead_modest(self, rows):
        # Paper: TrioECC decoder ~ +54% area over SEC-DED.
        _, decoders = rows
        by_name = {row.name: row for row in decoders}
        overhead = by_name["TrioECC"].perf.area_overhead(by_name["SEC-DED"].perf)
        assert 0.2 < overhead < 1.0

    def test_symbol_decoders_slower(self, rows):
        _, decoders = rows
        by_name = {row.name: row for row in decoders}
        assert by_name["I:SSC+CSC"].perf.delay_ns > by_name["TrioECC"].perf.delay_ns
        assert by_name["SSC-DSD+"].perf.delay_ns >= by_name["I:SSC+CSC"].perf.delay_ns

    def test_binary_decoders_subcycle(self, rows):
        # The paper argues Duet/Trio stay well under a 0.66ns GPU cycle.
        _, decoders = rows
        by_name = {row.name: row for row in decoders}
        assert by_name["TrioECC"].perf.delay_ns < 0.66


class TestGenerators:
    def test_pair_hcm_adds_area(self):
        plain = binary_decoder(SEC_2BEC_72_64, pair_table=None, name="p").stats()
        paired = binary_decoder(
            SEC_2BEC_72_64, pair_table=paper_pair_table(), name="q"
        ).stats()
        assert paired.area > plain.area

    def test_csc_adds_area(self):
        code = hsiao_code()
        plain = binary_decoder(code, csc=False, name="p").stats()
        checked = binary_decoder(code, csc=True, name="q").stats()
        assert checked.area > plain.area

    def test_encoder_copies_scale_area(self):
        rs = ReedSolomonCode(18, 16)
        one = rs_encoder(rs, copies=1, name="one").stats()
        two = rs_encoder(rs, copies=2, name="two").stats()
        assert two.area == pytest.approx(2 * one.area)

    def test_ssc_csc_variant_bigger(self):
        plain = rs_ssc_decoder(csc=False, name="p").stats()
        checked = rs_ssc_decoder(csc=True, name="q").stats()
        assert checked.area > plain.area

    def test_dsd_has_three_locator_paths(self):
        # SSC-DSD+ carries 4 DLog ROMs vs the SSC codeword's 2; its area
        # should exceed a single SSC codeword decoder by a wide margin.
        dsd = ssc_dsd_decoder(name="dsd").stats()
        ssc = rs_ssc_decoder(name="ssc").stats()
        assert dsd.area > ssc.area

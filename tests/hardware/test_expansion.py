"""Expansion-tier netlists: functional BCH DEC, polar structure, rollup."""

import numpy as np
import pytest

from repro.core.registry import known_scheme_names
from repro.hardware.expansion import (
    bch_dec_decoder,
    expansion_rows,
    polar_decoder,
    polar_encoder,
    scheme_hardware,
)
from repro.hardware.synth import binary_decoder, binary_encoder, table3_rows


def _bch_decode_netlist(circuit, entry):
    out = circuit.evaluate([int(b) for b in entry])
    data = np.zeros(256, dtype=np.uint8)
    for codeword in range(2):
        for index in range(128):
            data[codeword * 128 + index] = out[f"cw{codeword}_data{index}"]
    due = out["cw0_due"] | out["cw1_due"]
    return data, due


class TestBchNetlist:
    @pytest.fixture(scope="class")
    def decoder(self):
        return bch_dec_decoder()

    @pytest.fixture(scope="class")
    def scheme(self):
        from repro.core import get_scheme

        return get_scheme("bch-dec")

    def test_clean_passthrough(self, decoder, scheme):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        decoded, due = _bch_decode_netlist(decoder, scheme.encode(data))
        assert due == 0
        assert np.array_equal(decoded, data)

    @pytest.mark.parametrize("positions", [(7,), (143,), (3, 97), (50, 51),
                                           (150, 287)])
    def test_corrects_singles_and_doubles(self, decoder, scheme, positions):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        entry = scheme.encode(data)
        for position in positions:
            entry[position] ^= 1
        decoded, due = _bch_decode_netlist(decoder, entry)
        assert due == 0
        assert np.array_equal(decoded, data)

    def test_triple_is_a_due(self, decoder, scheme):
        entry = scheme.encode(np.zeros(256, dtype=np.uint8))
        for position in (1, 60, 120):
            entry[position] ^= 1
        _, due = _bch_decode_netlist(decoder, entry)
        assert due == 1

    def test_netlist_agrees_with_the_software_decoder(self, decoder, scheme):
        from repro.core import DecodeStatus

        rng = np.random.default_rng(2)
        for _ in range(10):
            error = (rng.random(288) < 0.01).astype(np.uint8)
            decoded, due = _bch_decode_netlist(decoder, error)
            result = scheme.decode(error)
            if result.status is DecodeStatus.DETECTED:
                assert due == 1
            else:
                assert due == 0
                assert np.array_equal(decoded, result.data)


class TestPolarNetlists:
    def test_encoder_matches_the_software_encoder(self):
        from repro.codes.polar import POLAR_512_288

        circuit = polar_encoder()
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, 256, dtype=np.uint8)
        out = circuit.evaluate([int(b) for b in data])
        expected = POLAR_512_288.encode(data)
        got = np.array([out[f"x{j}"] for j in range(288)], dtype=np.uint8)
        assert np.array_equal(got, expected)

    def test_decoder_shape_and_scale(self):
        stats = polar_decoder().stats()
        # Fully unrolled SC at N=512 is deliberately priced honestly: the
        # quantized datapath lands far beyond every single-cycle decoder.
        baseline = table3_rows()[1][0].perf.area
        assert stats.area > 10 * baseline
        assert stats.delay_ns > 1.0


class TestRollup:
    def test_expansion_rows_cover_the_tier(self):
        encoders, decoders = expansion_rows()
        assert [row.name for row in decoders] == [
            "SEC-DED v2", "SEC-DAEC", "BCH-DEC", "Polar"
        ]
        for row in encoders + decoders:
            assert row.perf.area > 0
            assert row.eff.area > 0
            assert row.perf.delay_ns > 0

    def test_scheme_hardware_spans_the_registry(self):
        table = scheme_hardware()
        assert set(table) == set(known_scheme_names())
        # The paper tier and the expansion tier both cost real silicon;
        # the multi-cycle extension tier is deliberately left unpriced.
        assert table["dsc"] == (None, None)
        assert table["ssc-tsd"] == (None, None)
        for name in ("trio", "hsiao-v2", "sec-daec", "bch-dec", "polar"):
            encoder, decoder = table[name]
            assert decoder is not None and decoder.perf.area > 0

    def test_interleaved_variants_share_circuits(self):
        table = scheme_hardware()
        assert table["ni-secded"][1] is not None
        assert table["i-secded"][1] == table["ni-secded"][1]


class TestGeneralizedBinaryCircuits:
    def test_encoder_copies_follow_the_code_geometry(self):
        from repro.codes.bch import BCH_DEC_144_128

        circuit = binary_encoder(BCH_DEC_144_128, name="enc")
        out = circuit.evaluate([0] * (2 * 128))  # 2 codewords of 128 data
        assert sorted(out) == sorted(
            f"cw{c}_check{row}" for c in range(2) for row in range(16)
        )

    def test_decoder_corrects_a_sliding_window_double(self):
        from repro.codes.sec_daec import SEC_DAEC_72_64, SEC_DAEC_PAIRS

        circuit = binary_decoder(SEC_DAEC_72_64, pair_table=SEC_DAEC_PAIRS,
                                 name="dec")
        entry = np.zeros(288, dtype=np.uint8)
        entry[10] ^= 1
        entry[11] ^= 1  # adjacent double in codeword 0
        out = circuit.evaluate([int(b) for b in entry])
        assert out["entry_due"] == 0
        corrected = [out[f"cw{c}_data{i}"] for c in range(4) for i in range(64)]
        assert not any(corrected)

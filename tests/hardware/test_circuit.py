"""Tests for the gate-level netlist and timing/area estimation."""

import pytest

from repro.hardware.circuit import Circuit
from repro.hardware.gates import GATE_SPECS, GateKind


class TestBasics:
    def test_inputs_are_free(self):
        circuit = Circuit("c")
        circuit.add_input(10)
        assert circuit.area() == 0.0
        assert circuit.gate_count() == 0

    def test_single_gate_area_and_delay(self):
        circuit = Circuit("c")
        a, b = circuit.add_input(2)
        out = circuit.gate(GateKind.XOR2, a, b)
        circuit.mark_output("o", out)
        spec = GATE_SPECS[GateKind.XOR2]
        assert circuit.area() == spec.area
        assert circuit.delay_ns() == spec.delay_ns
        assert circuit.gate_count() == 1

    def test_fanin_validation(self):
        circuit = Circuit("c")
        (a,) = circuit.add_input(1)
        with pytest.raises(ValueError):
            circuit.gate(GateKind.AND2, a)

    def test_constants_are_free(self):
        circuit = Circuit("c")
        circuit.const(0)
        circuit.const(1)
        assert circuit.area() == 0.0


class TestTrees:
    def test_balanced_tree_depth(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(8)
        out = circuit.xor_tree(inputs, balanced=True)
        circuit.mark_output("o", out)
        spec = GATE_SPECS[GateKind.XOR2]
        assert circuit.delay_ns() == pytest.approx(3 * spec.delay_ns)
        assert circuit.gate_count() == 7

    def test_chain_tree_depth(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(8)
        out = circuit.xor_tree(inputs, balanced=False)
        circuit.mark_output("o", out)
        spec = GATE_SPECS[GateKind.XOR2]
        assert circuit.delay_ns() == pytest.approx(7 * spec.delay_ns)
        assert circuit.gate_count() == 7  # same area, worse delay

    def test_single_node_tree(self):
        circuit = Circuit("c")
        (a,) = circuit.add_input(1)
        assert circuit.xor_tree([a]) == a

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            Circuit("c").xor_tree([])

    def test_odd_width_tree(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(5)
        circuit.mark_output("o", circuit.or_tree(inputs))
        assert circuit.gate_count() == 4


class TestMatchConstant:
    def test_comparator_structure(self):
        circuit = Circuit("c")
        bits = circuit.add_input(8)
        circuit.mark_output("o", circuit.match_constant(bits, 0b10110001))
        # 8-input AND tree (7 gates) + inverters for the four 0 bits.
        counts = {"and": 0, "not": 0}
        assert circuit.gate_count() == 7 + 4

    def test_all_ones_constant_needs_no_inverters(self):
        circuit = Circuit("c")
        bits = circuit.add_input(4)
        circuit.mark_output("o", circuit.match_constant(bits, 0b1111))
        assert circuit.gate_count() == 3


class TestSharing:
    def test_sharing_merges_identical_gates(self):
        circuit = Circuit("c")
        circuit.enable_sharing(True)
        a, b = circuit.add_input(2)
        first = circuit.gate(GateKind.AND2, a, b)
        second = circuit.gate(GateKind.AND2, a, b)
        assert first == second
        assert circuit.gate_count() == 1

    def test_without_sharing_gates_duplicate(self):
        circuit = Circuit("c")
        a, b = circuit.add_input(2)
        assert circuit.gate(GateKind.AND2, a, b) != circuit.gate(GateKind.AND2, a, b)

    def test_sharing_distinguishes_operand_order(self):
        circuit = Circuit("c")
        circuit.enable_sharing(True)
        a, b = circuit.add_input(2)
        assert circuit.gate(GateKind.AND2, a, b) != circuit.gate(GateKind.AND2, b, a)


class TestScaling:
    def test_area_and_delay_scales(self):
        plain = Circuit("plain")
        scaled = Circuit("scaled", area_scale=0.5, delay_scale=2.0)
        for circuit in (plain, scaled):
            a, b = circuit.add_input(2)
            circuit.mark_output("o", circuit.gate(GateKind.XOR2, a, b))
        assert scaled.area() == pytest.approx(plain.area() * 0.5)
        assert scaled.delay_ns() == pytest.approx(plain.delay_ns() * 2.0)


class TestRom:
    def test_rom_area_scales_with_contents(self):
        circuit = Circuit("c")
        address = circuit.add_input(8)
        outputs = circuit.rom(address, 8)
        assert len(outputs) == 8
        from repro.hardware.gates import ROM_AREA_PER_BIT

        assert circuit.area() == pytest.approx(256 * 8 * ROM_AREA_PER_BIT)

    def test_rom_delay(self):
        from repro.hardware.gates import ROM_DELAY_NS

        circuit = Circuit("c")
        address = circuit.add_input(4)
        outputs = circuit.rom(address, 2)
        circuit.mark_output("o", outputs[0])
        assert circuit.delay_ns() == pytest.approx(ROM_DELAY_NS)


class TestStats:
    def test_stats_snapshot(self):
        circuit = Circuit("snap")
        a, b = circuit.add_input(2)
        circuit.mark_output("o", circuit.gate(GateKind.OR2, a, b))
        stats = circuit.stats()
        assert stats.name == "snap"
        assert stats.area == circuit.area()
        assert stats.gate_count == 1

    def test_overhead_computation(self):
        base = Circuit("base")
        a, b = base.add_input(2)
        base.mark_output("o", base.gate(GateKind.AND2, a, b))
        bigger = Circuit("big")
        a, b = bigger.add_input(2)
        x = bigger.gate(GateKind.AND2, a, b)
        bigger.mark_output("o", bigger.gate(GateKind.AND2, x, a))
        assert bigger.stats().area_overhead(base.stats()) == pytest.approx(1.0)

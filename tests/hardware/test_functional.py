"""Functional verification of the synthesized netlists.

The Table-3 generators would be worthless as a cost model if the circuits
they build didn't actually implement the codes.  These tests simulate the
gate-level netlists and compare them against the reference software
encoders/decoders bit for bit.
"""

import numpy as np
import pytest

from repro.codes.hsiao import hsiao_code
from repro.codes.sec2bec import SEC_2BEC_72_64, paper_pair_table
from repro.hardware.circuit import Circuit
from repro.hardware.gates import GateKind
from repro.hardware.synth import binary_decoder, binary_encoder


class TestEvaluate:
    def test_basic_gates(self):
        circuit = Circuit("c")
        a, b = circuit.add_input(2)
        circuit.mark_output("and", circuit.gate(GateKind.AND2, a, b))
        circuit.mark_output("xor", circuit.gate(GateKind.XOR2, a, b))
        circuit.mark_output("nor", circuit.gate(GateKind.NOR2, a, b))
        circuit.mark_output("not", circuit.gate(GateKind.NOT, a))
        out = circuit.evaluate([1, 0])
        assert out == {"and": 0, "xor": 1, "nor": 0, "not": 0}

    def test_mux(self):
        circuit = Circuit("c")
        select, low, high = circuit.add_input(3)
        circuit.mark_output("out", circuit.gate(GateKind.MUX2, select, low, high))
        assert circuit.evaluate([0, 1, 0])["out"] == 1
        assert circuit.evaluate([1, 1, 0])["out"] == 0

    def test_input_count_checked(self):
        circuit = Circuit("c")
        circuit.add_input(2)
        with pytest.raises(ValueError):
            circuit.evaluate([1])

    def test_rom_not_simulable(self):
        circuit = Circuit("c")
        address = circuit.add_input(2)
        outputs = circuit.rom(address, 1)
        circuit.mark_output("o", outputs[0])
        with pytest.raises(NotImplementedError):
            circuit.evaluate([0, 0])


@pytest.mark.parametrize("code_factory", [hsiao_code, lambda: SEC_2BEC_72_64],
                         ids=["hsiao", "sec2bec"])
@pytest.mark.parametrize("efficient", [False, True], ids=["perf", "eff"])
class TestEncoderNetlists:
    def test_encoder_computes_real_check_bits(self, code_factory, efficient):
        code = code_factory()
        circuit = binary_encoder(code, copies=1, efficient=efficient,
                                 name="enc")
        rng = np.random.default_rng(0)
        for _ in range(10):
            data = rng.integers(0, 2, 64, dtype=np.uint8)
            expected = code.encode(data)[code.check_positions]
            outputs = circuit.evaluate(list(data))
            produced = [outputs[f"cw0_check{row}"] for row in range(8)]
            assert produced == expected.tolist()


class TestDecoderNetlists:
    @pytest.fixture(scope="class")
    def decoder(self):
        return binary_decoder(hsiao_code(), name="dec")

    @staticmethod
    def _entry_inputs(code, data_words, flip=None):
        """Four codewords' received bits, in the decoder's input order."""
        bits = []
        for word in data_words:
            bits.extend(code.encode(word).tolist())
        if flip is not None:
            bits[flip] ^= 1
        return bits

    def test_clean_entry(self, decoder):
        code = hsiao_code()
        rng = np.random.default_rng(1)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        outputs = decoder.evaluate(self._entry_inputs(code, words))
        assert outputs["entry_due"] == 0
        for cw in range(4):
            produced = [outputs[f"cw{cw}_data{i}"] for i in range(64)]
            assert produced == words[cw].tolist()

    def test_single_bit_error_corrected_in_netlist(self, decoder):
        code = hsiao_code()
        rng = np.random.default_rng(2)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        for flip in (0, 63, 70, 72 + 5, 3 * 72 + 33):
            outputs = decoder.evaluate(self._entry_inputs(code, words, flip))
            assert outputs["entry_due"] == 0, flip
            for cw in range(4):
                produced = [outputs[f"cw{cw}_data{i}"] for i in range(64)]
                assert produced == words[cw].tolist(), (flip, cw)

    def test_double_bit_error_raises_due_in_netlist(self, decoder):
        code = hsiao_code()
        rng = np.random.default_rng(3)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        bits = self._entry_inputs(code, words)
        bits[10] ^= 1
        bits[40] ^= 1  # same codeword: double error
        assert decoder.evaluate(bits)["entry_due"] == 1

    def test_pair_hcm_corrects_aligned_double(self):
        code = SEC_2BEC_72_64
        decoder = binary_decoder(code, pair_table=paper_pair_table(),
                                 name="trio-dec")
        rng = np.random.default_rng(4)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        bits = TestDecoderNetlists._entry_inputs(code, words)
        bits[20] ^= 1
        bits[21] ^= 1  # aligned 2b symbol (20, 21) in codeword 0
        outputs = decoder.evaluate(bits)
        assert outputs["entry_due"] == 0
        produced = [outputs[f"cw0_data{i}"] for i in range(64)]
        assert produced == words[0].tolist()


class TestRSNetlists:
    """The Reed-Solomon netlists are functionally simulable too: ROMs carry
    the DLog table, the EAC subtractor implements real mod-255 arithmetic,
    and the location decoder resolves the ones'-complement double zero."""

    @staticmethod
    def _ssc_inputs(cw0, cw1):
        bits = []
        for codeword in (cw0, cw1):
            for symbol in codeword:
                bits.extend(((int(symbol) >> b) & 1) for b in range(8))
        return bits

    @staticmethod
    def _dsd_inputs(codeword):
        bits = []
        for symbol in codeword:
            bits.extend(((int(symbol) >> b) & 1) for b in range(8))
        return bits

    def test_ssc_netlist_clean(self):
        from repro.codes.reed_solomon import ReedSolomonCode
        from repro.hardware.synth import rs_ssc_decoder

        rs = ReedSolomonCode(18, 16)
        circuit = rs_ssc_decoder(name="f")
        rng = np.random.default_rng(0)
        data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(2)]
        codewords = [rs.encode(d) for d in data]
        outputs = circuit.evaluate(self._ssc_inputs(*codewords))
        assert outputs["cw0_due"] == 0 and outputs["cw1_due"] == 0
        for cw in range(2):
            for j in range(16):
                value = sum(
                    outputs[f"cw{cw}_data{j * 8 + b}"] << b for b in range(8)
                )
                assert value == int(data[cw][j])

    def test_ssc_netlist_corrects_single_symbols(self):
        from repro.codes.reed_solomon import ReedSolomonCode
        from repro.hardware.synth import rs_ssc_decoder

        rs = ReedSolomonCode(18, 16)
        circuit = rs_ssc_decoder(name="f")
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 16, dtype=np.uint8)
        clean = rs.encode(data)
        other = rs.encode(np.zeros(16, dtype=np.uint8))
        for position in (0, 1, 7, 17):  # includes the 0/255 aliasing case
            for value in (1, 0xFF):
                bad = clean.copy()
                bad[position] ^= value
                outputs = circuit.evaluate(self._ssc_inputs(bad, other))
                assert outputs["cw0_due"] == 0, (position, value)
                recovered = [
                    sum(outputs[f"cw0_data{j * 8 + b}"] << b for b in range(8))
                    for j in range(16)
                ]
                assert recovered == data.tolist(), (position, value)

    def test_ssc_netlist_flags_out_of_range_locations(self):
        from repro.codes.reed_solomon import ReedSolomonCode
        from repro.hardware.synth import rs_ssc_decoder

        rs = ReedSolomonCode(18, 16)
        circuit = rs_ssc_decoder(name="f")
        rng = np.random.default_rng(2)
        cw = rs.encode(rng.integers(0, 256, 16, dtype=np.uint8))
        other = rs.encode(np.zeros(16, dtype=np.uint8))
        detected = 0
        for _ in range(30):
            bad = cw.copy()
            p1, p2 = rng.choice(18, 2, replace=False)
            bad[p1] ^= rng.integers(1, 256)
            bad[p2] ^= rng.integers(1, 256)
            outputs = circuit.evaluate(self._ssc_inputs(bad, other))
            reference = rs.decode_one_shot_ssc(bad)
            from repro.codes.reed_solomon import RSDecodeStatus

            assert outputs["cw0_due"] == int(
                reference.status is RSDecodeStatus.DETECTED
            )
            detected += outputs["cw0_due"]
        assert detected > 20

    def test_dsd_netlist_corrects_and_detects(self):
        from repro.codes.reed_solomon import ReedSolomonCode
        from repro.hardware.synth import ssc_dsd_decoder

        rs = ReedSolomonCode(36, 32)
        circuit = ssc_dsd_decoder(name="f")
        rng = np.random.default_rng(3)
        data = rng.integers(0, 256, 32, dtype=np.uint8)
        clean = rs.encode(data)

        outputs = circuit.evaluate(self._dsd_inputs(clean))
        assert outputs["due"] == 0

        for position in (0, 4, 35):
            bad = clean.copy()
            bad[position] ^= 0x3C
            outputs = circuit.evaluate(self._dsd_inputs(bad))
            assert outputs["due"] == 0, position
            recovered = [
                sum(outputs[f"data{j * 8 + b}"] << b for b in range(8))
                for j in range(32)
            ]
            assert recovered == data.tolist(), position

        for _ in range(20):  # double-symbol errors must raise the DUE
            bad = clean.copy()
            p1, p2 = rng.choice(36, 2, replace=False)
            bad[p1] ^= rng.integers(1, 256)
            bad[p2] ^= rng.integers(1, 256)
            assert circuit.evaluate(self._dsd_inputs(bad))["due"] == 1


class TestReconfigurableNetlist:
    """Figure 7b's DuetECC/TrioECC enable signal, simulated in gates."""

    @pytest.fixture(scope="class")
    def decoder(self):
        return binary_decoder(
            SEC_2BEC_72_64, pair_table=paper_pair_table(), csc=True,
            mode_input=True, name="reconfig-dec",
        )

    @staticmethod
    def _inputs(mode, words, flips=()):
        code = SEC_2BEC_72_64
        bits = [mode]
        for word in words:
            bits.extend(code.encode(word).tolist())
        for flip in flips:
            bits[1 + flip] ^= 1
        return bits

    def test_mode_requires_pair_table(self):
        with pytest.raises(ValueError):
            binary_decoder(hsiao_code(), mode_input=True, name="bad")

    def test_aligned_pair_error_follows_the_mode_pin(self, decoder):
        rng = np.random.default_rng(0)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        flips = (20, 21)  # one aligned 2b symbol in codeword 0
        # Trio mode (enable = 1): corrected.
        outputs = decoder.evaluate(self._inputs(1, words, flips))
        assert outputs["entry_due"] == 0
        produced = [outputs[f"cw0_data{i}"] for i in range(64)]
        assert produced == words[0].tolist()
        # Duet mode (enable = 0): the same error raises a DUE.
        outputs = decoder.evaluate(self._inputs(0, words, flips))
        assert outputs["entry_due"] == 1

    def test_single_bit_errors_unaffected_by_mode(self, decoder):
        rng = np.random.default_rng(1)
        words = [rng.integers(0, 2, 64, dtype=np.uint8) for _ in range(4)]
        for mode in (0, 1):
            outputs = decoder.evaluate(self._inputs(mode, words, (100,)))
            assert outputs["entry_due"] == 0, mode

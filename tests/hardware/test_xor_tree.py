"""Tests for XOR-network builders and GF(2^8) constant multipliers."""

import numpy as np
import pytest

from repro.gf.gf256 import gf_mul
from repro.hardware.circuit import Circuit
from repro.hardware.xor_tree import (
    gf_const_mult,
    gf_const_mult_matrix,
    xor_combine_bytes,
    xor_rows,
)


class TestGfConstMultMatrix:
    @pytest.mark.parametrize("constant", [1, 2, 3, 0x1D, 0x53, 0xFF])
    def test_matrix_matches_field_multiplication(self, constant):
        matrix = gf_const_mult_matrix(constant)
        for value in (1, 2, 0x80, 0xA5, 0xFF):
            bits = np.array([(value >> i) & 1 for i in range(8)], dtype=np.uint8)
            product_bits = (matrix @ bits) % 2
            product = 0
            for i in range(8):
                product |= int(product_bits[i]) << i
            assert product == gf_mul(constant, value)

    def test_identity_constant(self):
        assert np.array_equal(gf_const_mult_matrix(1), np.eye(8, dtype=np.uint8))

    def test_zero_constant_matrix(self):
        assert not gf_const_mult_matrix(0).any()


class TestXorRows:
    def test_gate_count_matches_row_weights(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(8)
        matrix = np.array(
            [[1, 1, 1, 0, 0, 0, 0, 0],
             [1, 0, 0, 0, 0, 0, 0, 1]], dtype=np.uint8)
        xor_rows(circuit, matrix, inputs)
        # Row weights 3 and 2 -> (3-1) + (2-1) = 3 XOR gates.
        assert circuit.gate_count() == 3

    def test_empty_row_becomes_constant(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(4)
        outputs = xor_rows(circuit, np.zeros((1, 4), dtype=np.uint8), inputs)
        assert len(outputs) == 1
        assert circuit.gate_count() == 0

    def test_weight1_row_is_a_wire(self):
        circuit = Circuit("c")
        inputs = circuit.add_input(4)
        matrix = np.array([[0, 1, 0, 0]], dtype=np.uint8)
        outputs = xor_rows(circuit, matrix, inputs)
        assert outputs[0] == inputs[1]


class TestByteHelpers:
    def test_gf_const_mult_instantiates_xor_network(self):
        circuit = Circuit("c")
        byte = circuit.add_input(8)
        outputs = gf_const_mult(circuit, 0x1D, byte)
        assert len(outputs) == 8
        assert circuit.gate_count() > 0

    def test_xor_combine_bytes_width(self):
        circuit = Circuit("c")
        groups = [circuit.add_input(8) for _ in range(5)]
        combined = xor_combine_bytes(circuit, groups)
        assert len(combined) == 8
        # Each output bit: XOR tree of 5 -> 4 gates; 8 bits -> 32 gates.
        assert circuit.gate_count() == 32

"""Tests for the ASCII table/series renderers."""

from repro.analysis.tables import format_percent, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_points_rendered(self):
        text = format_series("MTTI", [0.5, 1.0], [6.3, 3.1],
                             x_label="EF", y_label="hours")
        assert "EF -> hours" in text
        assert "6.3" in text
        assert len(text.splitlines()) == 3


class TestFormatPercent:
    def test_zero(self):
        assert format_percent(0.0) == "0"

    def test_ordinary_value(self):
        assert format_percent(0.054) == "5.40%"

    def test_tiny_value_keeps_precision(self):
        rendered = format_percent(1.3e-7)
        assert "%" in rendered
        assert "1.3e-05" in rendered


class TestReportGenerator:
    def test_generate_report_sections(self):
        from repro.analysis.report import generate_report

        markdown = generate_report(samples=300, campaign_events=300)
        for section in ("## Table 1", "## Table 2", "## Figure 8",
                        "## Table 3", "## Figure 9", "## Section 7.3"):
            assert section in markdown

    def test_report_is_valid_markdown_tables(self):
        from repro.analysis.report import generate_report

        markdown = generate_report(samples=300, campaign_events=300)
        for line in markdown.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3

"""Tests for the Figure-1 historical trend analysis."""

import pytest

from repro.analysis.historical import (
    HBM2_MEASURED,
    HISTORICAL_CAPACITIES_MBIT,
    HISTORICAL_ERROR_RATES,
    NON_BITCELL_BAND,
    historical_trends,
)


@pytest.fixture(scope="module")
def trends():
    return historical_trends()


class TestData:
    def test_error_rates_fall(self):
        rates = [rate for _, rate in HISTORICAL_ERROR_RATES]
        assert rates == sorted(rates, reverse=True)

    def test_capacities_rise(self):
        capacities = [c for _, c in HISTORICAL_CAPACITIES_MBIT]
        assert capacities == sorted(capacities)

    def test_hbm2_overlay_has_multibit_component(self):
        _, total, multibit = HBM2_MEASURED
        assert 0 < multibit < total

    def test_non_bitcell_band_two_orders(self):
        low, high = NON_BITCELL_BAND
        assert high / low == pytest.approx(100.0)


class TestTrends:
    def test_rate_fit_decays(self, trends):
        assert trends.error_rate_fit.rate < 0

    def test_capacity_fit_grows(self, trends):
        assert trends.capacity_fit.rate > 0

    def test_fits_are_tight(self, trends):
        assert trends.error_rate_fit.r_squared > 0.98
        assert trends.capacity_fit.r_squared > 0.95

    def test_paper_claim_rate_outpaces_capacity(self, trends):
        """Figure 1: "a decrease in the per-chip DRAM failure rate that
        outpaces the increase in DRAM capacities"."""
        assert trends.rate_outpaces_capacity()

    def test_hbm2_within_expectations(self, trends):
        assert trends.hbm2_within_expectations()

    def test_hbm2_multibit_within_non_bitcell_band(self, trends):
        low, high = trends.non_bitcell_band
        _, _, multibit = trends.hbm2_point
        assert low <= multibit <= high

    def test_characteristic_intervals(self, trends):
        # Error rate halves every ~1.5-2 years; capacity doubles ~2 years.
        assert 1.0 < trends.rate_halving_years < 3.0
        assert 1.0 < trends.capacity_doubling_years < 3.5

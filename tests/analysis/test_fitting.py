"""Tests for the regression utilities."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    fit_exponential,
    fit_linear,
    fit_retention_normal,
)


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10.0)
        fit = fit_linear(x, 3.0 * x + 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r_squared(self):
        rng = np.random.default_rng(0)
        x = np.arange(50.0)
        y = 2.0 * x + rng.normal(0, 1.0, 50)
        fit = fit_linear(x, y)
        assert 0.95 < fit.r_squared <= 1.0

    def test_predict(self):
        fit = fit_linear([0.0, 1.0], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1.0], [1.0])

    def test_constant_data(self):
        fit = fit_linear([0.0, 1.0, 2.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)


class TestNormalCdfFit:
    def test_recovers_synthetic_parameters(self):
        from scipy.stats import norm

        mean, sigma, population = 20e-3, 10e-3, 2700.0
        periods = np.array([4, 8, 12, 16, 24, 32, 48, 64]) * 1e-3
        counts = population * norm.cdf((periods - mean) / sigma)
        fit = fit_retention_normal(periods, counts)
        assert fit.mean_s == pytest.approx(mean, rel=0.02)
        assert fit.sigma_s == pytest.approx(sigma, rel=0.02)
        assert fit.population == pytest.approx(population, rel=0.02)
        assert fit.r_squared > 0.999

    def test_predict_monotone(self):
        periods = np.array([8, 16, 32, 48]) * 1e-3
        counts = np.array([294, 1000, 2300, 2589], dtype=float)
        fit = fit_retention_normal(periods, counts)
        predictions = fit.predict(np.array([4, 8, 16, 32, 64]) * 1e-3)
        assert np.all(np.diff(predictions) > 0)

    def test_density_integrates_to_population(self):
        periods = np.array([8, 16, 32, 48]) * 1e-3
        counts = np.array([294, 1000, 2300, 2589], dtype=float)
        fit = fit_retention_normal(periods, counts)
        grid = np.linspace(-0.2, 0.3, 20000)
        integral = np.trapezoid(fit.density(grid), grid)
        assert integral == pytest.approx(fit.population, rel=0.01)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            fit_retention_normal([1.0, 2.0], [1.0, 2.0])


class TestExponentialFit:
    def test_recovers_decay(self):
        x = np.arange(2000, 2020, dtype=float)
        y = 100.0 * np.exp(-0.2 * (x - 2000))
        fit = fit_exponential(x - 2000, y)
        assert fit.rate == pytest.approx(-0.2, rel=1e-6)
        assert fit.scale == pytest.approx(100.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_doubling_interval(self):
        fit = fit_exponential([0.0, 1.0, 2.0], [1.0, 2.0, 4.0])
        assert fit.doubling_interval() == pytest.approx(1.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_exponential([0.0, 1.0], [1.0, 0.0])

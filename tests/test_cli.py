"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, version_string


class TestVersion:
    def test_version_command(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip() == version_string()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == version_string()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate", "trio"])
        assert args.scheme == "trio"
        assert args.samples == 20_000


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "TrioECC" in out
        assert "SSC-DSD+" in out
        assert "[extension]" in out
        assert "[expansion]" in out
        for name in ("hsiao-v2", "sec-daec", "bch-dec", "polar"):
            assert name in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "duet", "--samples", "500"]) == 0
        out = capsys.readouterr().out
        assert "per-pattern outcomes" in out
        assert "exhaustive" in out
        assert "Table-1 weighted" in out

    def test_evaluate_alias(self, capsys):
        assert main(["evaluate", "TrioECC", "--samples", "500"]) == 0
        assert "TrioECC" in capsys.readouterr().out

    def test_evaluate_unknown_scheme(self, capsys):
        assert main(["evaluate", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "unknown ECC scheme 'nonsense'" in err
        assert "trio" in err  # registry names are listed...
        assert "duetecc" in err  # ...and so are the aliases
        assert "Traceback" not in err

    def test_campaign_unknown_fleet_scheme(self, capsys):
        assert main(["campaign", "--runs", "1", "--events", "10",
                     "--fleet-size", "100", "--fleet-scheme", "bogus",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown ECC scheme 'bogus'" in err

    def test_fig8(self, capsys):
        assert main(["fig8", "--samples", "300"]) == 0
        out = capsys.readouterr().out
        assert out.count("%") > 20
        assert "NI:SEC-DED" in out

    def test_hardware(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "Encoders" in out and "Decoders" in out
        assert "TrioECC" in out
        assert "BCH-DEC" not in out  # expansion tables are opt-in

    def test_hardware_expansion(self, capsys):
        assert main(["hardware", "--expansion"]) == 0
        out = capsys.readouterr().out
        assert "TrioECC" in out
        assert "BCH-DEC" in out and "Polar" in out

    def test_rank(self, capsys):
        assert main(["rank", "--samples", "200", "--no-cache"]) == 0
        out = capsys.readouterr().out
        for name in ("trio", "bch-dec", "polar", "ssc-dsd+"):
            assert name in out
        assert "SDC" in out and "area" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--runs", "1", "--events", "200",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Derived Table 1" in out
        assert "SBSE" in out

    def test_campaign_streaming_matches_materialize(self, capsys):
        argv = ["campaign", "--runs", "1", "--events", "200", "--seed",
                "3", "--fleet-size", "100", "--no-cache"]
        assert main([*argv, "--stats", "streaming"]) == 0
        streamed = capsys.readouterr().out
        assert main([*argv, "--stats", "materialize"]) == 0
        materialized = capsys.readouterr().out
        assert "Fleet model: 100 GPUs" in streamed
        assert "MTBF" in streamed and "FIT" in streamed
        assert streamed == materialized  # byte-identical reports

    def test_system(self, capsys):
        assert main(["system", "--scheme", "trio", "--samples", "500",
                     "--exaflops", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "exascale" in out
        assert "ISO 26262" in out

    def test_search(self, capsys):
        assert main(["search", "--population", "8", "--generations", "1",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Base32" in out
        assert "aliases" in out


class TestReport:
    def test_report_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["report", "--samples", "300"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "## Table 2" in out
        assert "## Figure 9" in out
        assert "ISO 26262" in out

    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "report.md"
        assert main(["report", "--samples", "300", "-o", str(target)]) == 0
        assert "report written" in capsys.readouterr().out
        content = target.read_text()
        assert "TrioECC" in content

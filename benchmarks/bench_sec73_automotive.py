"""Section 7.3 — autonomous-vehicle safety: ISO 26262 FIT rates and the
national-fleet exposure model."""

from benchmarks._output import emit
from benchmarks._shared import scheme_outcomes
from repro.analysis.tables import format_table
from repro.core import SCHEME_NAMES, get_scheme
from repro.system.automotive import ISO26262_SDC_FIT_LIMIT, assess_scheme


def test_sec73_automotive_safety(benchmark):
    outcomes = scheme_outcomes()

    def assess_all():
        return {name: assess_scheme(outcomes[name]) for name in SCHEME_NAMES}

    assessments = benchmark(assess_all)

    rows = []
    for name in SCHEME_NAMES:
        assessment = assessments[name]
        rows.append([
            get_scheme(name).label,
            f"{assessment.sdc_fit:.4g}",
            "PASS" if assessment.meets_iso26262 else "FAIL",
            f"{assessment.fleet_sdc_per_day:.3g}",
            f"{assessment.days_between_fleet_sdc:,.0f}",
            f"{assessment.fleet_due_cars_per_day:,.0f}",
        ])
    emit(
        f"Section 7.3: automotive safety (ISO 26262 limit "
        f"{ISO26262_SDC_FIT_LIMIT} FIT; paper: SEC-DED 216 FIT FAIL, "
        f"Trio 0.29 FIT, Duet 0.045 FIT; fleet: ~41 SDC/day SEC-DED, "
        f"DUE recoveries 148 cars/day Duet vs 25 Trio)",
        format_table(
            ["scheme", "SDC FIT/GPU", "ISO 26262", "fleet SDC/day",
             "days between fleet SDC", "DUE cars/day"],
            rows,
        ),
    )

    secded = assessments["ni-secded"]
    duet = assessments["duet"]
    trio = assessments["trio"]

    assert not secded.meets_iso26262  # ~216 FIT >> 10 FIT
    assert secded.sdc_fit > 100
    assert duet.meets_iso26262 and duet.sdc_fit < 1.0
    assert trio.meets_iso26262 and trio.sdc_fit < 1.0
    # Fleet exposure shapes.
    assert 25 < secded.fleet_sdc_per_day < 90  # paper: ~41
    assert 120 < duet.fleet_due_cars_per_day < 180  # paper: ~148
    assert 15 < trio.fleet_due_cars_per_day < 40  # paper: ~25
    assert duet.days_between_fleet_sdc > trio.days_between_fleet_sdc
    # SSC-DSD+ nearly eliminates the risk entirely.
    assert assessments["ssc-dsd+"].sdc_fit < 0.05

"""Figure 4 — soft error severity and breadth.

(a) the SBSE/SBME/MBSE/MBME event-class mixture;
(b) the long-tailed MBME breadth histogram;
(c) byte-aligned vs non-byte-aligned multi-bit errors with words/entry.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.beam.events import EventClass, SoftErrorEventGenerator
from repro.beam.postprocess import (
    breadth_class_fractions,
    byte_alignment_stats,
    events_from_truth,
    mbme_breadth_histogram,
)

NUM_EVENTS = 8000


@pytest.fixture(scope="module")
def observed_events():
    generator = SoftErrorEventGenerator(seed=20211018)
    return events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(NUM_EVENTS)]
    )


def test_fig4a_event_classes(benchmark, observed_events):
    fractions = benchmark(breadth_class_fractions, observed_events)

    paper = {
        EventClass.SBSE: 0.65, EventClass.SBME: 0.02,
        EventClass.MBSE: 0.05, EventClass.MBME: 0.28,
    }
    rows = [
        [klass.name, f"{fractions[klass]:.1%}", f"{paper[klass]:.1%}"]
        for klass in EventClass
    ]
    emit(
        "Figure 4a: error breadth/severity classes",
        format_table(["class", "measured", "paper"], rows),
    )
    assert abs(fractions[EventClass.SBSE] - 0.65) < 0.03
    assert abs(fractions[EventClass.MBME] - 0.28) < 0.03


def test_fig4b_mbme_breadth(benchmark, observed_events):
    histogram = benchmark(mbme_breadth_histogram, observed_events)

    rows = [[label, count] for label, count in histogram.items()]
    emit(
        "Figure 4b: 32B entries affected per MBME error "
        "(paper: long tail, most broad error = 5,359 entries)",
        format_table(["entries affected", "events"], rows),
    )
    # Long tail: small events dominate yet hundreds-wide events exist.
    assert histogram["2-3"] > histogram["64-127"]
    assert sum(
        count for label, count in histogram.items()
        if int(label.split("-")[0]) >= 128
    ) > 0


def test_fig4c_byte_alignment(benchmark, observed_events):
    stats = benchmark(byte_alignment_stats, observed_events)

    rows = [[key, f"{value:.1%}"] for key, value in stats.items()]
    emit(
        "Figure 4c: multi-bit error alignment and words per entry "
        "(paper: 74.6% byte-aligned; aligned errors ~1 word/entry, "
        "non-aligned errors usually all 4)",
        format_table(["statistic", "value"], rows),
    )
    assert abs(stats["byte_aligned_fraction"] - 0.746) < 0.04
    assert stats["aligned_words_1"] > stats["aligned_words_2"]
    assert stats["non_aligned_words_4"] > stats["non_aligned_words_2"]

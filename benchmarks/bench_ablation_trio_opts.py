"""Ablation — the three complementary TrioECC optimizations (Section 6.1).

TrioECC = interleaving + correction sanity check + SEC-2bEC.  The paper
presents them as complementary: interleaving restructures byte errors,
the CSC restores detection that aggressive correction would spend, and the
2b-symbol code converts Duet's detections into corrections.  This benchmark
isolates each increment along both build-up paths.
"""

from benchmarks._output import emit
from benchmarks._shared import scheme_outcomes
from repro.analysis.tables import format_percent, format_table

STEPS = (
    ("ni-secded", "baseline"),
    ("i-secded", "+ interleave"),
    ("duet", "+ CSC  (= DuetECC)"),
    ("ni-sec2bec", "baseline + 2bEC only"),
    ("i-sec2bec", "+ interleave"),
    ("trio", "+ CSC  (= TrioECC)"),
)


def test_ablation_trio_optimizations(benchmark):
    outcomes = benchmark.pedantic(scheme_outcomes, rounds=1, iterations=1)

    rows = []
    for name, label in STEPS:
        outcome = outcomes[name]
        rows.append([
            label,
            f"{outcome.correct:.2%}",
            f"{outcome.detect:.2%}",
            format_percent(outcome.sdc),
        ])
    emit(
        "Ablation: incremental contribution of the three TrioECC "
        "optimizations",
        format_table(["configuration", "corrected", "DUE", "SDC"], rows),
    )

    secded = outcomes["ni-secded"]
    interleaved = outcomes["i-secded"]
    duet = outcomes["duet"]
    sec2bec = outcomes["ni-sec2bec"]
    i_sec2bec = outcomes["i-sec2bec"]
    trio = outcomes["trio"]

    # Interleaving: the big SDC lever on the SEC-DED path (paper: 247x).
    assert secded.sdc / interleaved.sdc > 100
    # CSC: another order of magnitude, at a sub-1% correction cost.
    assert interleaved.sdc / duet.sdc > 5
    assert interleaved.correct - duet.correct < 0.01
    # 2bEC alone is a regression; interleaving rescues it (paper's point
    # that the optimizations are complementary, not independent).
    assert sec2bec.sdc > secded.sdc
    assert i_sec2bec.correct - sec2bec.correct > 0.15
    assert i_sec2bec.sdc < sec2bec.sdc / 10
    # CSC again buys an order of magnitude on the 2bEC path.
    assert i_sec2bec.sdc / trio.sdc > 5
    # End to end: Trio corrects ~16% more events than Duet.
    assert trio.correct - duet.correct > 0.12

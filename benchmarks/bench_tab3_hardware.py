"""Table 3 — encoder/decoder hardware overheads.

Synthesizes every circuit at the performant and area-time-efficient design
points.  Areas are technology-independent AND2-equivalent counts from our
cell model; the paper's relative orderings are asserted, not its absolute
Synopsys numbers.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.hardware.synth import table3_rows


def _render(rows, baseline):
    rendered = []
    for row in rows:
        for label, stats, base in (("Perf.", row.perf, baseline.perf),
                                   ("Eff.", row.eff, baseline.eff)):
            rendered.append([
                row.name,
                label,
                f"{stats.area:,.0f}",
                f"{stats.area_overhead(base):+.1%}",
                f"{stats.delay_ns:.3f}",
                f"{stats.delay_overhead(base):+.1%}",
            ])
    return rendered


def test_tab3_hardware_overheads(benchmark):
    encoders, decoders = benchmark.pedantic(table3_rows, rounds=1, iterations=1)

    headers = ["circuit", "point", "area (AND2)", "area vs SEC-DED",
               "delay (ns)", "delay vs SEC-DED"]
    emit(
        "Table 3 (encoders): hardware overheads",
        format_table(headers, _render(encoders, encoders[0])),
    )
    emit(
        "Table 3 (decoders): hardware overheads",
        format_table(headers, _render(decoders, decoders[0])),
    )

    enc = {row.name: row for row in encoders}
    dec = {row.name: row for row in decoders}

    # Encoder ordering: binary < I:SSC < SSC-DSD+ (paper: +443% for DSD+).
    assert (enc["SEC-DED"].perf.area
            < enc["SEC-2bEC (Duet/Trio)"].perf.area
            < enc["I:SSC"].perf.area
            < enc["SSC-DSD+"].perf.area)
    assert enc["SSC-DSD+"].perf.area / enc["SEC-DED"].perf.area > 3

    # Decoder ordering: SEC-DED < Duet < Trio; symbol decoders slower.
    assert (dec["SEC-DED"].perf.area
            < dec["DuetECC"].perf.area
            < dec["TrioECC"].perf.area)
    trio_overhead = dec["TrioECC"].perf.area_overhead(dec["SEC-DED"].perf)
    assert 0.2 < trio_overhead < 1.0  # paper: +54.5%
    assert dec["SSC-DSD+"].perf.delay_ns > dec["TrioECC"].perf.delay_ns
    assert dec["SSC-DSD+"].perf.area == max(r.perf.area for r in decoders)

    # Drop-in claim: Duet/Trio decode well inside a 0.66 ns GPU cycle.
    assert dec["TrioECC"].perf.delay_ns < 0.66

    # Every Eff. point trades delay for area.
    for row in list(encoders) + list(decoders):
        assert row.eff.area < row.perf.area
        assert row.eff.delay_ns > row.perf.delay_ns

"""Beam statistics-campaign throughput (library performance).

Tracks the columnar engine of :mod:`repro.beam.engine` against the
retained scalar reference path over the full generate → scan →
post-process pipeline, asserting the derived Figure 4/5 statistics and
Table 1 stay bit-identical while the columnar path clears its speedup
floor.  ``REPRO_BEAM_BENCH_EVENTS`` scales the campaign (the CI smoke job
runs a smaller one; the 10x floor applies at the full 3,000 events).

Also guards the observability contract: running with the full obs stack
(explicit tracer, heartbeat, trace export) must stay within 2% of the
plain run.  Set ``REPRO_BEAM_BENCH_TRACE`` to a path to export the traced
run's JSONL trace artifact (the CI smoke job uploads and validates it).
"""

import os
import time

from benchmarks._output import emit
from repro.beam.engine import run_statistics_campaign
from repro.obs import Heartbeat, Tracer, write_trace

EVENTS = int(os.environ.get("REPRO_BEAM_BENCH_EVENTS", "3000"))
SEED = 20211018
#: full-size campaigns must clear 10x; scaled-down smoke runs just beat 1x
SPEEDUP_FLOOR = 10.0 if EVENTS >= 3000 else 1.0
#: tracing overhead bound: 2% relative plus absolute slack for tiny smoke
#: campaigns where scheduler noise dwarfs the pipeline itself
TRACE_OVERHEAD = 1.02
TRACE_SLACK_S = 0.05


def _run(engine: str, **kwargs):
    start = time.perf_counter()
    result = run_statistics_campaign(EVENTS, seed=SEED, engine=engine,
                                     **kwargs)
    return result, time.perf_counter() - start


def test_beam_engine_throughput():
    """Columnar vs reference: identical statistics, >=10x wall-clock."""
    run_statistics_campaign(64, seed=SEED)  # warm imports and caches
    columnar, columnar_s = _run("columnar")
    reference, reference_s = _run("reference")

    assert columnar.class_fractions == reference.class_fractions
    assert columnar.mbme_histogram == reference.mbme_histogram
    assert columnar.byte_alignment == reference.byte_alignment
    assert columnar.bits_per_word_aligned == reference.bits_per_word_aligned
    assert columnar.bits_per_word_non_aligned == \
        reference.bits_per_word_non_aligned
    assert columnar.table1 == reference.table1  # exact float equality
    assert columnar.n_records == reference.n_records

    speedup = reference_s / columnar_s
    rows = [
        f"{'stage':<12} {'reference s':>12} {'columnar s':>11} "
        f"{'col events/s':>13}",
    ]
    for stage in columnar.stage_seconds:
        rows.append(
            f"{stage:<12} {reference.stage_seconds[stage]:>12.3f} "
            f"{columnar.stage_seconds[stage]:>11.3f} "
            f"{columnar.events_per_second[stage]:>13,.0f}"
        )
    rows.append(
        f"{'total':<12} {reference_s:>12.3f} {columnar_s:>11.3f} "
        f"{EVENTS / columnar_s:>13,.0f}"
    )
    rows.append(
        f"\n{EVENTS:,} events, {columnar.n_records:,} mismatch records, "
        f"{columnar.n_observed:,} observed events"
    )
    rows.append(f"speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR:g}x) — "
                "derived Table 1 / Figure 4/5 statistics bit-identical")
    emit("Throughput — beam statistics campaign (columnar vs reference)",
         "\n".join(rows))
    assert speedup >= SPEEDUP_FLOOR


def test_beam_engine_workers_bit_identical():
    """The chunk fan-out returns the exact serial statistics."""
    serial, serial_s = _run("columnar")
    fanned, fanned_s = _run("columnar", workers=2)

    assert fanned.table1 == serial.table1
    assert fanned.class_fractions == serial.class_fractions
    assert fanned.observed_events == serial.observed_events
    emit(
        "Throughput — beam campaign workers fan-out (columnar)",
        f"workers=1 {serial_s:6.2f} s\n"
        f"workers=2 {fanned_s:6.2f} s (bit-identical statistics; speedup "
        f"requires multi-core hardware)",
    )


def test_beam_engine_tracing_overhead():
    """The obs layer (tracer + heartbeat + export) costs <2% throughput."""
    run_statistics_campaign(64, seed=SEED)  # warm imports and caches

    def _best(runner, repeats=3):
        best_s, best_result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = runner()
            elapsed = time.perf_counter() - start
            if elapsed < best_s:
                best_s, best_result = elapsed, result
        return best_s, best_result

    plain_s, plain = _best(
        lambda: run_statistics_campaign(EVENTS, seed=SEED))

    def _traced():
        tracer = Tracer()
        heartbeat = Heartbeat("bench", unit="chunks", interval_s=0.5,
                              callback=lambda line: None)
        result = run_statistics_campaign(EVENTS, seed=SEED, tracer=tracer,
                                         heartbeat=heartbeat)
        return result, tracer

    traced_s, (traced, tracer) = _best(_traced)

    assert traced.table1 == plain.table1  # observability never perturbs
    assert traced.n_records == plain.n_records

    trace_out = os.environ.get("REPRO_BEAM_BENCH_TRACE")
    if trace_out:
        write_trace(trace_out, tracer.records,
                    meta={"bench": "beam_throughput", "events": EVENTS})

    overhead = traced_s / plain_s - 1.0
    emit(
        "Throughput — beam campaign tracing overhead (columnar)",
        f"plain  {plain_s:6.3f} s\n"
        f"traced {traced_s:6.3f} s ({len(tracer.records)} spans, "
        f"overhead {overhead:+.1%}; bound {TRACE_OVERHEAD - 1:.0%} "
        f"+ {TRACE_SLACK_S:g}s slack)",
    )
    assert traced_s <= plain_s * TRACE_OVERHEAD + TRACE_SLACK_S

"""Beam statistics-campaign throughput (library performance).

Tracks the three statistics engines of :mod:`repro.beam.engine` over the
full generate → scan → post-process pipeline, asserting the derived
Figure 4/5 statistics and Table 1 stay bit-identical while the fast
paths clear their speedup floors:

* ``columnar`` vs the retained scalar ``reference`` (the PR-3 contract:
  ≥ 10x at the full 3,000 events);
* ``shm`` (fused whole-campaign passes + zero-copy transport) vs
  ``columnar`` (this PR's contract: ≥ 10x at the full 1,000,000 events).

The shm-vs-columnar legs each run in a *fresh subprocess*: at campaign
scale both engines are sensitive to inherited heap state (a leg that
rides the other's already-faulted pages measures the allocator, not the
engine), so process isolation is what makes the two numbers comparable
— the same way standalone CLI campaigns run.  Bit-identity across the
process boundary is asserted on a canonical rendering of every derived
statistic (floats via ``repr``, which round-trips exactly).

``REPRO_BEAM_BENCH_EVENTS`` scales the columnar-vs-reference campaign,
``REPRO_BEAM_BENCH_SHM_EVENTS`` the shm-vs-columnar one, and
``REPRO_BEAM_BENCH_FANOUT_EVENTS`` the worker fan-out sweep (the CI
smoke job runs all three scaled down; the floors relax below full size).

Also guards the observability contract: running with the full obs stack
(explicit tracer, heartbeat, trace export) must stay within 2% of the
plain run — measured on the shm engine, whose fused dispatch leaves the
least overhead to hide in.  Set ``REPRO_BEAM_BENCH_TRACE`` to a path to
export the traced run's JSONL trace artifact (the CI smoke job uploads
and validates it).
"""

import json
import os
import subprocess
import sys
import time

from benchmarks._output import emit
from repro.beam.engine import run_statistics_campaign
from repro.core.shm import orphaned_segments
from repro.obs import Heartbeat, Tracer, write_trace

EVENTS = int(os.environ.get("REPRO_BEAM_BENCH_EVENTS", "3000"))
SHM_EVENTS = int(os.environ.get("REPRO_BEAM_BENCH_SHM_EVENTS",
                                str(max(EVENTS, 3000))))
FANOUT_EVENTS = int(os.environ.get("REPRO_BEAM_BENCH_FANOUT_EVENTS",
                                   "100000"))
STREAM_EVENTS = int(os.environ.get("REPRO_BEAM_BENCH_STREAM_EVENTS",
                                   "30000"))
#: the bounded-memory contracts hold where the occupancy bitmap's touched
#: pages have saturated (>=1e5-event baseline); below that, peak RSS
#: grows with the page-touch footprint, not the materialized columns
STREAM_FULL_SCALE = STREAM_EVENTS >= 1_000_000
SEED = 20211018
#: full-size campaigns must clear 10x; scaled-down smoke runs just beat 1x
SPEEDUP_FLOOR = 10.0 if EVENTS >= 3000 else 1.0
#: the shm engine's floor applies at the full 1e6-event campaign
SHM_SPEEDUP_FLOOR = 10.0 if SHM_EVENTS >= 1_000_000 else 1.0
#: tracing overhead bound: 2% relative plus absolute slack for tiny smoke
#: campaigns where scheduler noise dwarfs the pipeline itself
TRACE_OVERHEAD = 1.02
TRACE_SLACK_S = 0.05


def _run(engine: str, events: int = EVENTS, **kwargs):
    start = time.perf_counter()
    result = run_statistics_campaign(events, seed=SEED, engine=engine,
                                     **kwargs)
    return result, time.perf_counter() - start


def _assert_stats_identical(a, b):
    assert a.class_fractions == b.class_fractions
    assert a.mbme_histogram == b.mbme_histogram
    assert a.byte_alignment == b.byte_alignment
    assert a.bits_per_word_aligned == b.bits_per_word_aligned
    assert a.bits_per_word_non_aligned == b.bits_per_word_non_aligned
    assert a.table1 == b.table1  # exact float equality
    assert a.n_records == b.n_records
    assert a.n_observed == b.n_observed


def _stage_rows(fast, fast_s, slow, slow_s, fast_name, slow_name, events):
    rows = [
        f"{'stage':<12} {slow_name + ' s':>12} {fast_name + ' s':>11} "
        f"{fast_name + ' events/s':>20}",
    ]
    for stage in fast.stage_seconds:
        rows.append(
            f"{stage:<12} {slow.stage_seconds[stage]:>12.3f} "
            f"{fast.stage_seconds[stage]:>11.3f} "
            f"{fast.events_per_second[stage]:>20,.0f}"
        )
    rows.append(
        f"{'total':<12} {slow_s:>12.3f} {fast_s:>11.3f} "
        f"{events / fast_s:>20,.0f}"
    )
    return rows


def test_beam_engine_throughput():
    """Columnar vs reference: identical statistics, >=10x wall-clock."""
    run_statistics_campaign(64, seed=SEED)  # warm imports and caches
    columnar, columnar_s = _run("columnar")
    reference, reference_s = _run("reference")

    _assert_stats_identical(columnar, reference)

    speedup = reference_s / columnar_s
    rows = _stage_rows(columnar, columnar_s, reference, reference_s,
                       "columnar", "reference", EVENTS)
    rows.append(
        f"\n{EVENTS:,} events, {columnar.n_records:,} mismatch records, "
        f"{columnar.n_observed:,} observed events"
    )
    rows.append(f"speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR:g}x) — "
                "derived Table 1 / Figure 4/5 statistics bit-identical")
    emit("Throughput — beam statistics campaign (columnar vs reference)",
         "\n".join(rows))
    assert speedup >= SPEEDUP_FLOOR


#: one isolated campaign leg: run, then report wall/stages, peak RSS and
#: a canonical rendering of every derived statistic on stdout as JSON
_LEG_CODE = """
import json, resource, sys, time
from repro.beam.engine import run_statistics_campaign

engine, events, seed, stats = (sys.argv[1], int(sys.argv[2]),
                               int(sys.argv[3]), sys.argv[4])
t0 = time.perf_counter()
res = run_statistics_campaign(events, seed=seed, engine=engine,
                              stats=stats)
elapsed = time.perf_counter() - t0
print(json.dumps({
    "elapsed": elapsed,
    "stages": {k: float(v) for k, v in res.stage_seconds.items()},
    "n_records": res.n_records,
    "n_observed": res.n_observed,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "stats": repr((res.class_fractions, res.mbme_histogram,
                   res.byte_alignment, res.bits_per_word_aligned,
                   res.bits_per_word_non_aligned, res.table1)),
}))
"""


def _run_fresh(engine: str, events: int,
               stats: str = "materialize") -> dict:
    """One campaign in a fresh interpreter — no inherited heap state."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", _LEG_CODE, engine, str(events), str(SEED),
         stats],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.splitlines()[-1])


def test_beam_shm_engine_throughput():
    """Fused shm engine vs columnar: identical statistics, >=10x at 1e6."""
    shm = _run_fresh("shm", SHM_EVENTS)
    columnar = _run_fresh("columnar", SHM_EVENTS)

    assert shm["stats"] == columnar["stats"]  # exact, repr round-trips
    assert shm["n_records"] == columnar["n_records"]
    assert shm["n_observed"] == columnar["n_observed"]
    assert orphaned_segments() == []  # transport hygiene rides along

    speedup = columnar["elapsed"] / shm["elapsed"]
    rows = [
        f"{'stage':<12} {'columnar s':>12} {'shm s':>11} "
        f"{'shm events/s':>20}",
    ]
    for stage, shm_stage_s in shm["stages"].items():
        rows.append(
            f"{stage:<12} {columnar['stages'][stage]:>12.3f} "
            f"{shm_stage_s:>11.3f} "
            f"{SHM_EVENTS / shm_stage_s if shm_stage_s else 0:>20,.0f}"
        )
    rows.append(
        f"{'total':<12} {columnar['elapsed']:>12.3f} "
        f"{shm['elapsed']:>11.3f} {SHM_EVENTS / shm['elapsed']:>20,.0f}"
    )
    rows.append(
        f"\n{SHM_EVENTS:,} events, {shm['n_records']:,} mismatch records, "
        f"{shm['n_observed']:,} observed events (fresh process per leg)"
    )
    rows.append(f"speedup {speedup:.1f}x (floor {SHM_SPEEDUP_FLOOR:g}x) — "
                "statistics bit-identical, no orphaned shm segments")
    emit("Throughput — beam campaign fused shm engine (vs columnar)",
         "\n".join(rows))
    assert speedup >= SHM_SPEEDUP_FLOOR


def test_beam_streaming_bounded_memory():
    """Streaming vs materialize: identical statistics in bounded memory.

    Three fresh-process legs on the shm engine: a streamed campaign at
    ``STREAM_EVENTS``, the materialized oracle at the same size, and a
    streamed baseline at a tenth the events.  The streamed peak RSS must
    stay *flat* as the campaign grows (< 2x the baseline — the state is
    the device-occupancy bitmap plus O(KB) accumulators, not per-event
    columns), it must not exceed the materialized peak, and the derived
    statistics must be float-identical.  Numbers land in
    ``benchmarks/results/BENCH_streaming.json`` for trend tracking; scale
    with ``REPRO_BEAM_BENCH_STREAM_EVENTS`` (1e6/1e7 in the memory table
    of EXPERIMENTS.md).
    """
    baseline_events = max(STREAM_EVENTS // 10, 1000)
    baseline = _run_fresh("shm", baseline_events, stats="streaming")
    streamed = _run_fresh("shm", STREAM_EVENTS, stats="streaming")
    materialized = _run_fresh("shm", STREAM_EVENTS, stats="materialize")

    assert streamed["stats"] == materialized["stats"]  # exact floats
    assert streamed["n_records"] == materialized["n_records"]
    assert streamed["n_observed"] == materialized["n_observed"]
    assert orphaned_segments() == []

    flatness = streamed["peak_rss_kb"] / baseline["peak_rss_kb"]
    payload = {
        "events": STREAM_EVENTS,
        "baseline_events": baseline_events,
        "streaming": {
            "elapsed_s": streamed["elapsed"],
            "events_per_s": STREAM_EVENTS / streamed["elapsed"],
            "peak_rss_kb": streamed["peak_rss_kb"],
        },
        "materialize": {
            "elapsed_s": materialized["elapsed"],
            "events_per_s": STREAM_EVENTS / materialized["elapsed"],
            "peak_rss_kb": materialized["peak_rss_kb"],
        },
        "baseline_streaming_peak_rss_kb": baseline["peak_rss_kb"],
        "rss_flatness": flatness,
        "statistics_identical": True,
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "BENCH_streaming.json"),
              "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    rows = [
        f"{'leg':<24} {'events':>10} {'wall s':>8} {'events/s':>11} "
        f"{'peak RSS MB':>12}",
    ]
    for label, leg, events in (
        ("streaming (baseline)", baseline, baseline_events),
        ("streaming", streamed, STREAM_EVENTS),
        ("materialize", materialized, STREAM_EVENTS),
    ):
        rows.append(
            f"{label:<24} {events:>10,} {leg['elapsed']:>8.2f} "
            f"{events / leg['elapsed']:>11,.0f} "
            f"{leg['peak_rss_kb'] / 1024:>12,.0f}"
        )
    bound = "bound 2x" if STREAM_FULL_SCALE else "bound relaxed below 1e6"
    rows.append(
        f"\nstreamed RSS flatness {flatness:.2f}x of the "
        f"{baseline_events:,}-event baseline ({bound}); statistics "
        "float-identical to the materialized oracle"
    )
    emit("Memory — beam campaign streaming statistics (vs materialize)",
         "\n".join(rows))
    if STREAM_FULL_SCALE:
        assert flatness < 2.0
        assert streamed["peak_rss_kb"] <= materialized["peak_rss_kb"]
        # 2 sweeps must still be at least competitive with 1 materialized
        # pass + postprocess (in practice streaming wins: no
        # concatenation and no column transport)
        assert streamed["elapsed"] <= materialized["elapsed"] * 1.25


def test_beam_engine_workers_fan_out():
    """events/s per worker count on the shm engine, all bit-identical.

    Single-core hosts see the pool's dispatch overhead rather than a
    speedup; the table records throughput per worker count either way,
    and every row must reproduce the serial statistics exactly.
    """
    serial = None
    rows = [f"{'workers':<8} {'wall s':>8} {'events/s':>12}"]
    for workers in (1, 2, 4):
        result, elapsed = _run(
            "shm", events=FANOUT_EVENTS,
            workers=None if workers == 1 else workers)
        if serial is None:
            serial = result
        else:
            _assert_stats_identical(result, serial)
        rows.append(f"{workers:<8} {elapsed:>8.2f} "
                    f"{FANOUT_EVENTS / elapsed:>12,.0f}")
    assert orphaned_segments() == []
    rows.append(
        f"\n{FANOUT_EVENTS:,} events (shm engine); statistics "
        "bit-identical across all worker counts"
    )
    emit("Throughput — beam campaign workers fan-out", "\n".join(rows))


def test_beam_engine_tracing_overhead():
    """The obs layer (tracer + heartbeat + export) costs <2% throughput."""
    run_statistics_campaign(64, seed=SEED, engine="shm")  # warm caches

    def _best(runner, repeats=3):
        best_s, best_result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = runner()
            elapsed = time.perf_counter() - start
            if elapsed < best_s:
                best_s, best_result = elapsed, result
        return best_s, best_result

    plain_s, plain = _best(
        lambda: run_statistics_campaign(EVENTS, seed=SEED, engine="shm"))

    def _traced():
        tracer = Tracer()
        heartbeat = Heartbeat("bench", unit="chunks", interval_s=0.5,
                              callback=lambda line: None)
        result = run_statistics_campaign(EVENTS, seed=SEED, engine="shm",
                                         tracer=tracer, heartbeat=heartbeat)
        return result, tracer

    traced_s, (traced, tracer) = _best(_traced)

    assert traced.table1 == plain.table1  # observability never perturbs
    assert traced.n_records == plain.n_records

    trace_out = os.environ.get("REPRO_BEAM_BENCH_TRACE")
    if trace_out:
        write_trace(trace_out, tracer.records,
                    meta={"bench": "beam_throughput", "events": EVENTS})

    overhead = traced_s / plain_s - 1.0
    emit(
        "Throughput — beam campaign tracing overhead (shm)",
        f"plain  {plain_s:6.3f} s\n"
        f"traced {traced_s:6.3f} s ({len(tracer.records)} spans, "
        f"overhead {overhead:+.1%}; bound {TRACE_OVERHEAD - 1:.0%} "
        f"+ {TRACE_SLACK_S:g}s slack)",
    )
    assert traced_s <= plain_s * TRACE_OVERHEAD + TRACE_SLACK_S

"""Figure 5 — multi-bit error severity in bits per 64b word.

(a) byte-aligned errors: 2-8 bits, binomially distributed with an ~15%
    full-inversion anomaly at 8 bits;
(b) non-byte-aligned errors: up to 64 bits, peaking near half the word.
"""

from math import comb

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.beam.events import SoftErrorEventGenerator
from repro.beam.postprocess import bits_per_word_histogram, events_from_truth

NUM_EVENTS = 8000


@pytest.fixture(scope="module")
def observed_events():
    generator = SoftErrorEventGenerator(seed=20211018)
    return events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(NUM_EVENTS)]
    )


def _binomial_conditional(width, minimum=2):
    """The paper's random-corruption expectation (brown bars)."""
    total = sum(comb(width, k) for k in range(minimum, width + 1))
    return {k: comb(width, k) / total for k in range(minimum, width + 1)}


def test_fig5a_byte_aligned_severity(benchmark, observed_events):
    histogram = benchmark(
        bits_per_word_histogram, observed_events, byte_aligned=True
    )

    expectation = _binomial_conditional(8)
    rows = [
        [bits, f"{histogram.get(bits, 0.0):.1%}", f"{expectation.get(bits, 0.0):.1%}"]
        for bits in range(2, 9)
    ]
    emit(
        "Figure 5a: byte-aligned multi-bit severity (bits per word)",
        format_table(["bits", "measured", "random-corruption"], rows),
    )
    # Half-the-byte is the modal severity...
    assert max(histogram, key=histogram.get) in (4, 8)
    assert histogram[4] > histogram[2]
    # ...and the inversion anomaly inflates 8-bit flips well beyond binomial.
    assert histogram[8] > 2 * expectation[8]


def test_fig5b_non_aligned_severity(benchmark, observed_events):
    histogram = benchmark(
        bits_per_word_histogram, observed_events, byte_aligned=False
    )

    bins = [(2, 8), (9, 16), (17, 24), (25, 32), (33, 40), (41, 48), (49, 64)]
    binned = {
        f"{low}-{high}": sum(v for k, v in histogram.items() if low <= k <= high)
        for low, high in bins
    }
    rows = [[label, f"{value:.1%}"] for label, value in binned.items()]
    emit(
        "Figure 5b: non-byte-aligned multi-bit severity (bits per word) "
        "(paper: peaks near half the 64b word, ~15% full inversions)",
        format_table(["bits", "measured"], rows),
    )
    # Peak near half the word; inversions give a visible 64-bit component.
    assert binned["25-32"] > binned["2-8"] * 0.5
    assert histogram.get(64, 0.0) > 0.05

"""Ablation — does the genetic search matter?

The paper's SEC-2bEC matrix was tuned by a GA to minimize how many
non-aligned double-bit errors alias an aligned-pair syndrome (each alias is
a potential miscorrection, hence SDC).  This benchmark compares, on the
same interleaved+CSC TrioECC organization:

* the paper's published Equation-3 matrix,
* a code from our (briefly run) genetic search, and
* an intentionally unoptimized valid SEC-2bEC code (first generation,
  no selection pressure),

reporting the structural alias count and the measured double-bit SDC.
"""

import numpy as np

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.codes.genetic import miscorrection_count, search_sec2bec
from repro.codes.sec2bec import (
    SEC_2BEC_72_64,
    interleave_column_permutation,
    stride4_pairs,
)
from repro.core.binary import BinaryEntryScheme
from repro.errormodel.montecarlo import evaluate_pattern
from repro.errormodel.patterns import ErrorPattern
from repro.gf.gf2 import pack_bits


def _trio_like(code, name):
    """Build the TrioECC organization on an arbitrary SEC-2bEC matrix."""
    swizzled = code.column_permuted(interleave_column_permutation(), name=name)
    pair_table = swizzled.build_pair_table(stride4_pairs())
    return BinaryEntryScheme(
        swizzled, interleaved=True, pair_table=pair_table, csc=True,
        name=name, label=name,
    )


def _candidates():
    tuned = search_sec2bec(population=20, generations=12, seed=4)
    untuned = search_sec2bec(population=6, generations=0, seed=9)
    return [
        ("paper Eq. 3", SEC_2BEC_72_64),
        (f"GA ({tuned.generations_run} gens)", tuned.code),
        ("unoptimized", untuned.code),
    ]


def test_ablation_ga_code_quality(benchmark):
    candidates = benchmark.pedantic(_candidates, rounds=1, iterations=1)

    rows = []
    measured = {}
    for label, code in candidates:
        aliases = miscorrection_count(pack_bits(code.h.T))
        scheme = _trio_like(code, label)
        outcome = evaluate_pattern(scheme, ErrorPattern.DOUBLE_BIT)
        measured[label] = (aliases, outcome.sdc)
        rows.append([label, aliases, f"{outcome.sdc:.3%}", f"{outcome.dce:.2%}"])
    emit(
        "Ablation: SEC-2bEC code quality (paper: GA cuts non-aligned 2b "
        "miscorrection risk ~20% vs prior DAEC constructions)",
        format_table(
            ["H matrix", "2b alias count", "2-bit SDC (exhaustive)",
             "2-bit corrected"],
            rows,
        ),
    )

    paper_aliases, paper_sdc = measured["paper Eq. 3"]
    untuned_aliases, untuned_sdc = measured["unoptimized"]
    # Fixed regression value for the published matrix.
    assert paper_aliases == 553
    # Selection pressure matters: the paper's matrix beats a random valid
    # code on the structural metric, and SDC tracks the alias count.
    assert paper_aliases < untuned_aliases
    assert paper_sdc <= untuned_sdc
    # Every candidate still corrects all byte errors (the guarantee is
    # structural, independent of GA quality).
    for label, code in candidates:
        scheme = _trio_like(code, label)
        byte_outcome = evaluate_pattern(scheme, ErrorPattern.BYTE)
        assert byte_outcome.dce == 1.0, label

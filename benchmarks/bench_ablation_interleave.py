"""Ablation — why the interleave step is 73.

Equation 1 swizzles with stride 73 = codeword length + 1.  Any stride
coprime with 288 is a permutation, but only strides congruent to ±1 mod 72
simultaneously give the two structural properties the ECC organizations
need:

* a *byte* error (8 consecutive bits) lands as exactly 2 bits in each of
  the four codewords (so aligned-2b correction covers it), and
* a *pin* error (stride-72 bits) lands as exactly 1 bit per codeword at a
  common offset (so single-bit correction plus the CSC covers it).

This benchmark sweeps candidate strides, measures the worst-case
bits-per-codeword footprint of byte and pin errors, and confirms stride 73
achieves the optimum (2, 1) while representative alternatives do not.
"""

import math

import numpy as np

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.core.layout import ENTRY_BITS, NUM_PINS

CANDIDATE_STRIDES = (1, 5, 7, 11, 25, 35, 71, 73, 77, 145, 217)


def _footprints(stride: int) -> tuple[int, int, bool]:
    """(max byte-error bits per codeword, max pin-error bits per codeword,
    pin offsets aligned) for a given interleave stride."""
    perm = (np.arange(ENTRY_BITS, dtype=np.int64) * stride) % ENTRY_BITS

    worst_byte = 0
    for start in range(0, ENTRY_BITS, 8):
        per_codeword: dict[int, int] = {}
        for bit in range(8):
            ni = int(perm[start + bit])
            per_codeword[ni // 72] = per_codeword.get(ni // 72, 0) + 1
        worst_byte = max(worst_byte, max(per_codeword.values()))

    worst_pin = 0
    offsets_aligned = True
    for pin in range(NUM_PINS):
        per_codeword: dict[int, int] = {}
        offsets = set()
        for beat in range(4):
            ni = int(perm[pin + 72 * beat])
            per_codeword[ni // 72] = per_codeword.get(ni // 72, 0) + 1
            offsets.add(ni % 72)
        worst_pin = max(worst_pin, max(per_codeword.values()))
        if len(offsets) != 1:
            offsets_aligned = False
    return worst_byte, worst_pin, offsets_aligned


def _sweep():
    results = {}
    for stride in CANDIDATE_STRIDES:
        if math.gcd(stride, ENTRY_BITS) != 1:
            continue
        results[stride] = _footprints(stride)
    return results


def test_ablation_interleave_stride(benchmark):
    results = benchmark(_sweep)

    rows = []
    for stride, (byte_fp, pin_fp, aligned) in sorted(results.items()):
        optimal = byte_fp == 2 and pin_fp == 1 and aligned
        rows.append([
            stride,
            byte_fp,
            pin_fp,
            "yes" if aligned else "no",
            "OPTIMAL" if optimal else "",
        ])
    emit(
        "Ablation: interleave stride (Equation 1 uses 73) — worst-case "
        "bits per codeword for byte/pin errors",
        format_table(
            ["stride", "byte-error bits/cw", "pin-error bits/cw",
             "pin offsets aligned", ""],
            rows,
        ),
    )

    # Stride 1 (no interleaving): the whole byte hits one codeword.
    assert results[1] == (8, 1, True)
    # The paper's stride 73 is optimal on both axes.
    assert results[73] == (2, 1, True)
    # Its modular inverse 217 (= deswizzle stride) is too.
    assert results[217][0] == 2 and results[217][1] == 1
    # A generic coprime stride breaks at least one property.
    assert results[5] != (2, 1, True)
    assert results[35] != (2, 1, True)
    # Every optimal stride is congruent to +/-1 mod 72 — why "codeword
    # length plus one" is the natural choice.
    for stride, footprint in results.items():
        if footprint == (2, 1, True):
            assert stride % 72 in (1, 71), stride

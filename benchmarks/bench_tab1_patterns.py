"""Table 1 — soft error pattern probabilities.

Runs the full characterization pipeline: a simulated beam campaign for the
observation path (device, scanning, intermittent filtering, grouping),
supplemented with generator-truth events for statistical weight, then
classifies every event into the 7 patterns with the paper's priority rule.
"""

import pytest

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.beam.campaign import BeamCampaign, CampaignConfig
from repro.beam.displacement import DamageParameters
from repro.beam.events import EventParameters, SoftErrorEventGenerator
from repro.beam.postprocess import (
    derive_table1,
    events_from_truth,
    filter_intermittent,
    group_events,
)
from repro.errormodel.patterns import TABLE1_PROBABILITIES, ErrorPattern


def _characterize():
    # The observation path: a short campaign through the real device loop.
    config = CampaignConfig(
        runs=3, write_cycles=6, reads_per_write=3, loop_time_s=2.0, seed=11,
        event_parameters=EventParameters(mean_time_to_event_s=8.0),
        damage_parameters=DamageParameters(leaky_pool=80,
                                           saturation_fluence=3e8),
    )
    result = BeamCampaign(config).run()
    filtered = filter_intermittent(result.records)
    observed = group_events(filtered.soft_records)

    # Statistical weight: generator-truth events at analysis scale.
    generator = SoftErrorEventGenerator(seed=20211018)
    observed += events_from_truth(
        [generator.generate_event(20.0 * i) for i in range(6000)]
    )
    return derive_table1(observed), len(observed), len(filtered.damaged_entries)


def test_tab1_pattern_probabilities(benchmark):
    probabilities, num_events, num_damaged = benchmark.pedantic(
        _characterize, rounds=1, iterations=1
    )

    rows = [
        [pattern.value, f"{probabilities[pattern]:.2%}",
         f"{TABLE1_PROBABILITIES[pattern]:.2%}"]
        for pattern in ErrorPattern
    ]
    emit(
        f"Table 1: soft error pattern probabilities "
        f"({num_events} events; {num_damaged} damaged entries filtered)",
        format_table(["severity", "measured", "paper"], rows),
    )

    assert abs(sum(probabilities.values()) - 1.0) < 1e-9
    # Shape: single-bit dominates, byte errors are the major multi-bit mode.
    assert probabilities[ErrorPattern.BIT] > 0.55
    assert 0.12 < probabilities[ErrorPattern.BYTE] < 0.35
    assert probabilities[ErrorPattern.BYTE] > probabilities[ErrorPattern.ENTRY]
    assert probabilities[ErrorPattern.PIN] < 0.02

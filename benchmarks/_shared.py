"""Shared, cached computations for the benchmark harness.

The Table 2 / Figure 8 / Figure 9 / Section 7.3 benchmarks all consume the
same per-scheme outcome evaluation; computing it once per pytest session
keeps the whole harness fast while every benchmark still times its own
assembly step.
"""

from __future__ import annotations

from functools import cache

from repro.core import all_schemes
from repro.errormodel.montecarlo import SchemeOutcome, evaluate_scheme, weighted_outcomes

#: Monte Carlo sample count per sampled pattern.  The paper uses 1e7/1e9 on
#: a cluster; 60k keeps the harness to tens of seconds on one laptop core
#: with 99% confidence half-widths around +/-0.5% per sampled cell.
MC_SAMPLES = 60_000
MC_SEED = 20211018  # MICRO'21 opening day


@cache
def scheme_outcomes() -> dict[str, SchemeOutcome]:
    """Figure-8 weighted outcomes for all nine schemes (cached)."""
    outcomes = {}
    for scheme in all_schemes():
        per_pattern = evaluate_scheme(scheme, samples=MC_SAMPLES, seed=MC_SEED)
        outcomes[scheme.name] = weighted_outcomes(scheme, per_pattern=per_pattern)
    return outcomes

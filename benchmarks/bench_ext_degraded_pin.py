"""Extension — quantifying Section 2.5's graceful-degradation argument.

The paper preserves single-pin correction in every organization except
SSC-DSD+ so that a GPU with a cracked microbump can keep running until its
replacement is scheduled, but it never puts numbers on degraded operation.
This benchmark does: it superimposes a permanent stuck pin on the Table-1
soft-error stream and reports (a) the DUE rate of ordinary, soft-error-free
accesses — the availability cost — and (b) the outcome mix when a soft
error lands on the already-degraded device.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_percent, format_table
from repro.core import get_scheme
from repro.errormodel.permanent import evaluate_with_stuck_pin

SCHEMES = ("ni-secded", "duet", "trio", "i-ssc-csc", "ssc-dsd+")
SAMPLES = 30_000


def _evaluate_all():
    return {
        name: evaluate_with_stuck_pin(get_scheme(name), samples=SAMPLES,
                                      seed=20211018)
        for name in SCHEMES
    }


def test_ext_degraded_pin_operation(benchmark):
    outcomes = benchmark.pedantic(_evaluate_all, rounds=1, iterations=1)

    rows = []
    for name in SCHEMES:
        outcome = outcomes[name]
        rows.append([
            get_scheme(name).label,
            format_percent(outcome.due_without_soft_error),
            "yes" if outcome.survives_degraded else "NO",
            f"{outcome.correct_with_soft_error:.2%}",
            f"{outcome.due_with_soft_error:.2%}",
            format_percent(outcome.sdc_with_soft_error),
        ])
    emit(
        "Extension: operating with a permanent pin fault "
        "(clean-access DUE = availability cost of degradation; "
        "right columns = a soft error hitting the degraded device)",
        format_table(
            ["scheme", "clean-access DUE", "usable degraded",
             "soft: corrected", "soft: DUE", "soft: SDC"],
            rows,
        ),
    )

    # The §2.5 argument, quantified: pin-correcting schemes run degraded
    # with zero clean-access interrupts; SSC-DSD+ becomes unusable.
    for name in ("ni-secded", "duet", "trio", "i-ssc-csc"):
        assert outcomes[name].due_without_soft_error == 0.0, name
    assert outcomes["ssc-dsd+"].due_without_soft_error > 0.5

    # Under degradation the CSC turns most concurrent soft errors into
    # DUEs rather than risk misaligned corrections — Duet stays safest.
    assert outcomes["duet"].sdc_with_soft_error < 1e-3
    assert outcomes["duet"].due_with_soft_error > 0.5
    # Aggressive correction pays an SDC price once a pin is already dead.
    assert (outcomes["trio"].sdc_with_soft_error
            > outcomes["duet"].sdc_with_soft_error)

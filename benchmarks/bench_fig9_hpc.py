"""Figure 9 — exascale system MTTI (DUE rate) and MTTF (SDC rate) for
DuetECC and TrioECC, 0.5-2 exaflops."""

from benchmarks._output import emit
from benchmarks._shared import scheme_outcomes
from repro.analysis.tables import format_table
from repro.system.hpc import figure9_series

EXAFLOPS = (0.5, 0.75, 1.0, 1.5, 2.0)


def test_fig9_system_failure_rates(benchmark):
    outcomes = scheme_outcomes()
    series = benchmark(
        figure9_series,
        {name: outcomes[name] for name in ("ni-secded", "duet", "trio")},
        exaflops=EXAFLOPS,
    )

    rows = []
    for name, points in series.items():
        for point in points:
            rows.append([
                name,
                f"{point.exaflops:.2f}",
                f"{point.gpus:,}",
                f"{point.mtti_hours:.1f}",
                f"{point.mttf_hours:,.0f}",
                f"{point.mttf_months:,.1f}",
            ])
    emit(
        "Figure 9: exascale MTTI/MTTF "
        "(paper: Duet MTTI 1.6-6.3h, MTTF years; "
        "Trio MTTI 9.4-37.6h, MTTF 5.7-22.6 months; "
        "SEC-DED SDC every ~22.5h at 0.5 EF)",
        format_table(
            ["scheme", "exaflops", "GPUs", "MTTI (h)", "MTTF (h)", "MTTF (months)"],
            rows,
        ),
    )

    duet = {p.exaflops: p for p in series["duet"]}
    trio = {p.exaflops: p for p in series["trio"]}
    secded = {p.exaflops: p for p in series["ni-secded"]}

    # Duet: DUEs every 1.6-6.3 hours across the scale range.
    assert 4.5 < duet[0.5].mtti_hours < 8.5
    assert 1.1 < duet[2.0].mtti_hours < 2.2
    # Trio: 9.4-37.6 hours.
    assert 28 < trio[0.5].mtti_hours < 50
    assert 7 < trio[2.0].mtti_hours < 13
    # The correction/SDC trade-off: Trio wins MTTI, Duet wins MTTF.
    for exaflops in EXAFLOPS:
        assert trio[exaflops].mtti_hours > duet[exaflops].mtti_hours
        assert duet[exaflops].mttf_hours > trio[exaflops].mttf_hours
    # Trio MTTF lands in months; Duet in years; SEC-DED in hours/days.
    assert 3 < trio[0.5].mttf_months < 40
    assert duet[0.5].mttf_hours > 3 * 8766
    assert secded[0.5].mttf_hours < 100

"""Extension — scrub-interval planning and the single-event assumption.

The per-event methodology behind Table 2 / Figure 8 assumes each memory
entry sees at most one SEU between writes.  This benchmark quantifies when
that holds: at terrestrial rates the assumption is rock-solid for any sane
scrub interval, while at ChipIR's 2.52e8× accelerated flux errors *do*
accumulate — which is exactly why the paper's microbenchmark rewrites all
of memory every few seconds.
"""

from benchmarks._output import emit
from repro.analysis.tables import format_table
from repro.beam.flux import acceleration_factor
from repro.system.fit import GpuMemoryModel
from repro.system.scrubbing import ScrubbingModel

INTERVALS_H = (1.0, 24.0, 24.0 * 7, 24.0 * 30)


def _sweep():
    field = ScrubbingModel()
    beam = ScrubbingModel(
        gpu=GpuMemoryModel(fit_per_gbit=12.51 * acceleration_factor())
    )
    rows = []
    for interval in INTERVALS_H:
        rows.append((
            interval,
            field.accumulation_fit(interval),
            beam.accumulation_fit(interval),
        ))
    return field, beam, rows


def test_ext_scrubbing_intervals(benchmark):
    field, beam, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rendered = [
        [f"{interval:,.0f} h", f"{field_fit:.3g}", f"{beam_fit:.3g}"]
        for interval, field_fit, beam_fit in rows
    ]
    recommended = field.recommended_interval_hours(target_fit=0.01)
    emit(
        "Extension: soft-error accumulation vs scrub interval "
        "(FIT of multi-event entries; field vs in-beam rates)",
        format_table(["scrub interval", "field FIT", "in-beam FIT"], rendered)
        + f"\n\nscrub interval for <0.01 FIT accumulation in the field: "
        f"{recommended:,.0f} h (~{recommended / 8766:.0f} years)",
    )

    # Terrestrial: even monthly scrubbing keeps accumulation microscopic
    # next to TrioECC's ~0.3 SDC FIT — the per-event methodology is sound.
    assert field.accumulation_fit(24.0 * 30) < 1e-2
    # In the beam: accumulation would swamp the analysis within the hour,
    # hence the paper's rewrite-every-few-seconds microbenchmark loop.
    assert beam.accumulation_fit(1.0) > 1.0
    for (_, field_fit, beam_fit) in rows:
        assert beam_fit > field_fit

"""Table 2 — per-pattern SDC risk of all nine ECC organizations.

Cells marked "C" are always corrected and "D" always detected (exact, from
exhaustive enumeration); numeric cells are the silent-data-corruption
probability given that error pattern.
"""

from benchmarks._output import emit
from benchmarks._shared import MC_SAMPLES, MC_SEED, scheme_outcomes
from repro.analysis.tables import format_table
from repro.core import SCHEME_NAMES, get_scheme
from repro.errormodel.patterns import ErrorPattern


def test_tab2_sdc_risk(benchmark):
    outcomes = benchmark.pedantic(scheme_outcomes, rounds=1, iterations=1)

    headers = ["scheme"] + [pattern.value for pattern in ErrorPattern]
    rows = []
    for name in SCHEME_NAMES:
        per_pattern = outcomes[name].per_pattern
        rows.append(
            [get_scheme(name).label]
            + [per_pattern[pattern].cell() for pattern in ErrorPattern]
        )
    emit(
        f"Table 2: SDC risk per error pattern "
        f"(exhaustive for bit/pin/byte/2-bit; {MC_SAMPLES} samples for "
        f"3-bit/beat/entry, seed {MC_SEED})",
        format_table(headers, rows),
    )

    def cell(name, pattern):
        return outcomes[name].per_pattern[pattern]

    # Guaranteed cells, as in the paper's Table 2.
    for name in SCHEME_NAMES:
        assert cell(name, ErrorPattern.BIT).dce == 1.0  # everyone corrects bits
    for name in ("ni-secded", "i-secded", "duet", "trio", "i-ssc", "i-ssc-csc"):
        assert cell(name, ErrorPattern.PIN).dce == 1.0
    assert cell("ssc-dsd+", ErrorPattern.PIN).due == 1.0  # detect, not correct

    # Byte errors: the baseline leaks SDC; Duet detects; Trio/SSC correct.
    assert cell("ni-secded", ErrorPattern.BYTE).sdc > 0.2
    assert cell("duet", ErrorPattern.BYTE).sdc == 0.0
    for name in ("trio", "i-ssc", "i-ssc-csc", "ssc-dsd+"):
        assert cell(name, ErrorPattern.BYTE).dce == 1.0

    # The CSC slashes beat/entry SDC for the binary codes.
    assert (cell("duet", ErrorPattern.BEAT).sdc
            < cell("i-secded", ErrorPattern.BEAT).sdc)
    assert (cell("trio", ErrorPattern.ENTRY).sdc
            < cell("i-sec2bec", ErrorPattern.ENTRY).sdc)

    # NI:SEC-2bEC alone is a resilience regression (2-bit miscorrections).
    assert cell("ni-sec2bec", ErrorPattern.DOUBLE_BIT).sdc > 0.05

    # SSC-DSD+ detects all 2-bit and 3-bit patterns.
    assert cell("ssc-dsd+", ErrorPattern.DOUBLE_BIT).sdc == 0.0
    assert cell("ssc-dsd+", ErrorPattern.TRIPLE_BIT).sdc == 0.0

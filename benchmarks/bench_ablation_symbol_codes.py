"""Ablation — the full (36, 32) symbol-code design space of Section 6.2.

The paper considers three ways to spend four check symbols on one codeword:
DSC (double-symbol correct), SSC-TSD (single correct / triple detect) and
its own one-shot SSC-DSD+.  It keeps only the last, arguing the other two
need an iterative >= 8-cycle decoder.  This benchmark quantifies what that
latency argument leaves on the table.
"""

from benchmarks._output import emit
from benchmarks._shared import MC_SEED
from repro.analysis.tables import format_percent, format_table
from repro.core import get_scheme
from repro.errormodel.montecarlo import evaluate_scheme, weighted_outcomes
from repro.errormodel.patterns import ErrorPattern

SAMPLES = 30_000
SCHEMES = ("ssc-dsd+", "ssc-tsd", "dsc")


def _evaluate_all():
    results = {}
    for name in SCHEMES:
        scheme = get_scheme(name)
        per_pattern = evaluate_scheme(scheme, samples=SAMPLES, seed=MC_SEED)
        results[name] = weighted_outcomes(scheme, per_pattern=per_pattern)
    return results


def test_ablation_symbol_code_design_space(benchmark):
    outcomes = benchmark.pedantic(_evaluate_all, rounds=1, iterations=1)

    rows = []
    for name in SCHEMES:
        scheme = get_scheme(name)
        outcome = outcomes[name]
        cycles = getattr(scheme, "decoder_cycles", 1)
        rows.append([
            scheme.label,
            f"{outcome.correct:.2%}",
            f"{outcome.detect:.2%}",
            format_percent(outcome.sdc),
            f"{cycles}",
        ])
    emit(
        "Ablation: (36,32) symbol-code organizations "
        "(paper keeps SSC-DSD+ for its 1-cycle decoder)",
        format_table(
            ["organization", "corrected", "DUE", "SDC", "decoder cycles"],
            rows,
        ),
    )

    dsd = outcomes["ssc-dsd+"]
    tsd = outcomes["ssc-tsd"]
    dsc = outcomes["dsc"]

    # SSC-TSD buys nothing over the one-shot DSD+ (they are equivalent)...
    assert abs(tsd.correct - dsd.correct) < 1e-9
    assert abs(tsd.sdc - dsd.sdc) < 1e-9
    # ...while DSC buys extra correction (double-symbol events) at the cost
    # of both the 8-cycle decoder and a higher severe-error SDC risk.
    assert dsc.correct >= dsd.correct
    assert dsc.sdc >= dsd.sdc
    assert dsc.detect < dsd.detect

    # Per-pattern view: DSC corrects the 2-bit pattern outright (two bits in
    # two different bytes = two correctable symbols).
    assert dsc.per_pattern[ErrorPattern.DOUBLE_BIT].dce == 1.0
    assert dsd.per_pattern[ErrorPattern.DOUBLE_BIT].due == 1.0

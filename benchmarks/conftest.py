"""Benchmark-harness hooks: flush regenerated tables to the terminal.

pytest captures stdout from passing tests, so every table/figure a
benchmark regenerates is queued by :mod:`benchmarks._output` and printed
here, after the timing summary, where output reaches the real terminal
(and any ``tee``).
"""

import benchmarks._output as _output


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every queued table/figure after the benchmark run."""
    if not _output.EMITTED:
        return
    terminalreporter.section("regenerated tables and figures")
    for banner in _output.EMITTED:
        terminalreporter.write_line(banner)

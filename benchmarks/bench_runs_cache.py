"""Run-store cache speedup (library performance).

Tracks the tentpole promise of the persistent run store: a warm
:class:`repro.runs.CellCache` makes a full :func:`evaluate_scheme` sweep
essentially free while staying bit-identical to the cold computation.
"""

import time

from benchmarks._output import emit
from repro.core import get_scheme
from repro.errormodel.montecarlo import evaluate_scheme
from repro.runs import CellCache, RunStore

SAMPLES = 20_000
SEED = 20211018


def test_runs_cache_warm_speedup(tmp_path):
    """Warm lookups skip injection + decode entirely and stay identical."""
    scheme = get_scheme("trio")
    store = RunStore(tmp_path / "store")

    cold_cache = CellCache(store)
    start = time.perf_counter()
    cold = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                           cache=cold_cache)
    cold_s = time.perf_counter() - start

    warm_cache = CellCache(store)
    start = time.perf_counter()
    warm = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED,
                           cache=warm_cache)
    warm_s = time.perf_counter() - start

    assert warm == cold
    assert (cold_cache.hits, cold_cache.misses) == (0, 7)
    assert (warm_cache.hits, warm_cache.misses) == (7, 0)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    emit(
        "Throughput — run-store cache (trio)",
        f"cold {cold_s:6.3f} s (7 misses)\n"
        f"warm {warm_s:6.3f} s (7 hits, bit-identical)\n"
        f"speedup {speedup:,.0f}x",
    )
    # The acceptance bar is 10x on the full fig8 sweep; a single scheme
    # clears it comfortably unless artifact IO regresses badly.
    assert speedup > 10

"""Figure 3 — intermittent (displacement-damage) error experiments.

(a) observable weak cells vs. DRAM refresh period, with the model overlay;
(b) the normal retention-time fit recovered from the sweep;
(c) weak-cell accumulation vs. cumulative fluence with a linear fit.
"""

import numpy as np

from benchmarks._output import emit
from repro.analysis.fitting import fit_linear, fit_retention_normal
from repro.analysis.tables import format_table
from repro.beam.campaign import refresh_sweep
from repro.beam.displacement import DisplacementDamageModel
from repro.dram.refresh import RefreshConfig

SWEEP_PERIODS = [4e-3, 8e-3, 12e-3, 16e-3, 24e-3, 32e-3, 48e-3]


def _saturated_model(seed=20211018):
    model = DisplacementDamageModel(seed=seed)
    model.accumulate(1e11)  # a long campaign's worth of fluence
    return model


def test_fig3a_weak_cells_vs_refresh(benchmark):
    model = _saturated_model()
    sweep = benchmark(refresh_sweep, model, SWEEP_PERIODS)

    fit = fit_retention_normal(SWEEP_PERIODS, [sweep[p] for p in SWEEP_PERIODS])
    rows = [
        [f"{period * 1e3:.0f} ms", sweep[period],
         f"{fit.predict(period):.0f}",
         f"{model.predicted_observable(RefreshConfig(period)):.0f}"]
        for period in SWEEP_PERIODS
    ]
    emit(
        "Figure 3a: weak cell counts vs refresh period "
        "(paper: ~294 @ 8ms, ~1000 @ 16ms, ~2589 @ 48ms)",
        format_table(["refresh", "measured", "CDF fit", "model"], rows),
    )

    counts = [sweep[p] for p in SWEEP_PERIODS]
    assert counts == sorted(counts)
    assert 150 < sweep[8e-3] < 500
    assert 600 < sweep[16e-3] < 1400
    assert 2100 < sweep[48e-3] < 2700


def test_fig3b_retention_normal_fit(benchmark):
    model = _saturated_model()
    sweep = refresh_sweep(model, SWEEP_PERIODS)

    fit = benchmark(
        fit_retention_normal, SWEEP_PERIODS, [sweep[p] for p in SWEEP_PERIODS]
    )
    emit(
        "Figure 3b: normally-distributed weak cell retention times",
        f"mean    = {fit.mean_s * 1e3:.2f} ms  (model truth 20.0 ms)\n"
        f"sigma   = {fit.sigma_s * 1e3:.2f} ms  (model truth 10.0 ms)\n"
        f"cells   = {fit.population:.0f}      (model truth ~2700)\n"
        f"R^2     = {fit.r_squared:.4f}",
    )
    assert fit.r_squared > 0.98
    assert abs(fit.mean_s - 20e-3) < 5e-3
    assert abs(fit.sigma_s - 10e-3) < 4e-3


def test_fig3c_accumulation_with_fluence(benchmark):
    def accumulate_curve():
        model = DisplacementDamageModel(seed=7)
        fluences, counts = [], []
        # The beginning of the campaign: well under saturation fluence.
        step = model.parameters.saturation_fluence / 50
        for index in range(15):
            model.accumulate(step)
            fluences.append((index + 1) * step)
            counts.append(len(model.damaged_cells))
        return np.array(fluences), np.array(counts, dtype=float)

    fluences, counts = benchmark(accumulate_curve)
    fit = fit_linear(fluences, counts)

    rows = [
        [f"{fluence:.2e}", int(count), f"{fit.predict(fluence):.0f}"]
        for fluence, count in zip(fluences, counts)
    ]
    emit(
        "Figure 3c: weak cell accumulation vs cumulative fluence "
        "(paper: linear, R^2 = 0.97)",
        format_table(["fluence (n/cm^2)", "weak cells", "linear fit"], rows)
        + f"\n\nR^2 = {fit.r_squared:.4f}",
    )
    assert fit.r_squared > 0.9
    assert fit.slope > 0

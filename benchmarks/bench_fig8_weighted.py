"""Figure 8 — correction/detection/SDC probabilities per scheme, weighted
by the Table-1 pattern probabilities."""

from benchmarks._output import emit
from benchmarks._shared import scheme_outcomes
from repro.analysis.tables import format_percent, format_table
from repro.core import SCHEME_NAMES


def test_fig8_weighted_outcomes(benchmark):
    outcomes = benchmark.pedantic(scheme_outcomes, rounds=1, iterations=1)

    baseline = outcomes["ni-secded"]
    rows = []
    for name in SCHEME_NAMES:
        outcome = outcomes[name]
        sdc_ratio = (baseline.sdc / outcome.sdc) if outcome.sdc else float("inf")
        rows.append([
            outcome.label,
            f"{outcome.correct:.2%}",
            f"{outcome.detect:.2%}",
            format_percent(outcome.sdc),
            f"{sdc_ratio:,.0f}x",
        ])
    emit(
        "Figure 8: Table-1-weighted outcome probabilities "
        "(paper: SEC-DED 74%/20%/5.4%; Duet SDC ~0.0013%; "
        "Trio 97% correct / ~0.0085% SDC)",
        format_table(
            ["scheme", "corrected", "detected (DUE)", "SDC",
             "SDC reduction vs SEC-DED"],
            rows,
        ),
    )

    secded = outcomes["ni-secded"]
    interleaved = outcomes["i-secded"]
    duet = outcomes["duet"]
    trio = outcomes["trio"]

    # Paper's headline comparisons.
    assert 0.70 < secded.correct < 0.78  # ~74%
    assert 0.03 < secded.sdc < 0.11  # ~5.4%
    # Interleaving: ~6.6% more correction, two-orders SDC reduction.
    assert 0.05 < interleaved.correct - secded.correct < 0.09
    assert secded.sdc / interleaved.sdc > 100
    # DuetECC: further order-of-magnitude SDC reduction over interleaving.
    assert interleaved.sdc / duet.sdc > 5
    assert duet.sdc < 5e-5
    # TrioECC: ~97% correction, far fewer uncorrectable errors (paper 7.87x).
    assert trio.correct > 0.95
    assert 3 < secded.detect / trio.detect < 12
    assert trio.sdc < 2e-4
    # NI:SEC-2bEC alone is worse than the baseline (paper: 9.3% SDC).
    assert outcomes["ni-sec2bec"].sdc > secded.sdc
    # Symbol codes: SSC-DSD+ has the lowest SDC of all.
    assert outcomes["ssc-dsd+"].sdc <= min(
        outcome.sdc for outcome in outcomes.values()
    )

"""Figure 1 — historical DRAM soft-error trends vs. capacity, with the
measured HBM2 overlay and the non-bitcell band."""

from benchmarks._output import emit
from repro.analysis.historical import historical_trends
from repro.analysis.tables import format_table


def _rows(trends):
    rows = []
    for (year, rate), (_, capacity) in zip(
        trends.error_rate_points, trends.capacity_points
    ):
        rows.append([
            year,
            f"{rate:.1f}",
            f"{trends.error_rate_fit.predict(year):.1f}",
            f"{capacity:.0f}",
            f"{trends.capacity_fit.predict(year):.0f}",
        ])
    return rows


def test_fig1_historical_trends(benchmark):
    trends = benchmark(historical_trends)

    table = format_table(
        ["year", "per-chip SER", "SER fit", "capacity (Mbit)", "capacity fit"],
        _rows(trends),
    )
    year, total, multibit = trends.hbm2_point
    summary = (
        f"{table}\n\n"
        f"SER regression: halves every {trends.rate_halving_years:.2f} years"
        f" (R^2={trends.error_rate_fit.r_squared:.3f})\n"
        f"Capacity regression: doubles every "
        f"{trends.capacity_doubling_years:.2f} years"
        f" (R^2={trends.capacity_fit.r_squared:.3f})\n"
        f"SER decrease outpaces capacity increase: "
        f"{trends.rate_outpaces_capacity()}\n"
        f"HBM2 overlay ({year}): total={total}, multi-bit={multibit} "
        f"(non-bitcell band {trends.non_bitcell_band})\n"
        f"HBM2 within expectations: {trends.hbm2_within_expectations()}"
    )
    emit("Figure 1: historical neutron beam trends and HBM2 overlay", summary)

    assert trends.rate_outpaces_capacity()
    assert trends.hbm2_within_expectations()

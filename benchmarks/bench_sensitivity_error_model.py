"""Sensitivity — is the scheme ranking robust to the error model?

Table 1's probabilities come from one beam campaign on one HBM2 part.
Section 5 notes byte-aligned fractions and severity mixes could differ
across vendors and generations.  This benchmark re-weights the Figure-8
outcomes under perturbed mixtures — more multi-bit events, more severe
events, bitcell-dominated — and checks the paper's recommendations hold
everywhere: Duet/Trio/SSC-DSD+ dominate SEC-DED on SDC in every regime.
"""

from benchmarks._output import emit
from benchmarks._shared import scheme_outcomes
from repro.analysis.tables import format_percent, format_table
from repro.core import SCHEME_NAMES
from repro.errormodel.montecarlo import weighted_outcomes
from repro.errormodel.patterns import TABLE1_PROBABILITIES, ErrorPattern


def _normalized(weights: dict[ErrorPattern, float]) -> dict[ErrorPattern, float]:
    total = sum(weights.values())
    return {pattern: value / total for pattern, value in weights.items()}


MIXTURES = {
    "paper (Table 1)": dict(TABLE1_PROBABILITIES),
    "byte-heavy (2x byte)": _normalized({
        **TABLE1_PROBABILITIES, ErrorPattern.BYTE: 0.4512,
    }),
    "severe (10x beat+entry)": _normalized({
        **TABLE1_PROBABILITIES,
        ErrorPattern.BEAT: 0.09, ErrorPattern.ENTRY: 0.223,
    }),
    "bitcell-dominated (99% bit)": _normalized({
        ErrorPattern.BIT: 0.99, ErrorPattern.PIN: 0.001,
        ErrorPattern.BYTE: 0.006, ErrorPattern.DOUBLE_BIT: 0.001,
        ErrorPattern.TRIPLE_BIT: 0.0005, ErrorPattern.BEAT: 0.0005,
        ErrorPattern.ENTRY: 0.001,
    }),
}

KEY_SCHEMES = ("ni-secded", "duet", "trio", "ssc-dsd+")


def _reweigh_all():
    base = scheme_outcomes()
    table = {}
    for mixture_name, probabilities in MIXTURES.items():
        table[mixture_name] = {
            name: weighted_outcomes(
                _scheme(name),
                probabilities=probabilities,
                per_pattern=base[name].per_pattern,
            )
            for name in SCHEME_NAMES
        }
    return table


def _scheme(name):
    from repro.core import get_scheme

    return get_scheme(name)


def test_sensitivity_to_error_mixture(benchmark):
    table = benchmark.pedantic(_reweigh_all, rounds=1, iterations=1)

    rows = []
    for mixture_name, outcomes in table.items():
        for name in KEY_SCHEMES:
            outcome = outcomes[name]
            rows.append([
                mixture_name,
                name,
                f"{outcome.correct:.2%}",
                format_percent(outcome.sdc),
            ])
    emit(
        "Sensitivity: scheme outcomes under perturbed Table-1 mixtures",
        format_table(["mixture", "scheme", "corrected", "SDC"], rows),
    )

    for mixture_name, outcomes in table.items():
        secded = outcomes["ni-secded"]
        duet = outcomes["duet"]
        trio = outcomes["trio"]
        dsd = outcomes["ssc-dsd+"]
        # The recommendations are mixture-independent:
        assert duet.sdc < secded.sdc, mixture_name
        assert trio.sdc < secded.sdc, mixture_name
        assert trio.correct >= secded.correct, mixture_name
        assert dsd.sdc <= duet.sdc, mixture_name
    # But the *margin* depends on the mixture: byte-heavy widens Trio's
    # correction lead; bitcell-dominated narrows everything.
    byte_gap = (table["byte-heavy (2x byte)"]["trio"].correct
                - table["byte-heavy (2x byte)"]["ni-secded"].correct)
    bit_gap = (table["bitcell-dominated (99% bit)"]["trio"].correct
               - table["bitcell-dominated (99% bit)"]["ni-secded"].correct)
    assert byte_gap > bit_gap

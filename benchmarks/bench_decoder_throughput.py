"""Software decoder throughput (library performance, not a paper figure).

The Monte Carlo evaluation of Table 2 / Figure 8 rests on the vectorized
batch decoders; this benchmark measures their entry-decode throughput so
regressions in the hot path are caught.  pytest-benchmark runs each decoder
repeatedly over a fixed random error batch.
"""

import numpy as np
import pytest

from benchmarks._output import emit
from repro.core import get_scheme
from repro.core.layout import ENTRY_BITS

BATCH = 20_000
SCHEMES = ("ni-secded", "duet", "trio", "i-ssc-csc", "ssc-dsd+", "dsc")


@pytest.fixture(scope="module")
def error_batch():
    rng = np.random.default_rng(99)
    return (rng.random((BATCH, ENTRY_BITS)) < 0.01).astype(np.uint8)


@pytest.mark.parametrize("name", SCHEMES)
def test_batch_decoder_throughput(benchmark, name, error_batch):
    scheme = get_scheme(name)
    result = benchmark(scheme.decode_batch_errors, error_batch)
    entries_per_second = BATCH / benchmark.stats["mean"]
    emit(
        f"Throughput — {name} batch decoder",
        f"{entries_per_second:,.0f} entries/s "
        f"({BATCH} entries/call, mean {benchmark.stats['mean'] * 1e3:.1f} ms)",
    )
    assert result.size == BATCH
    # Sanity floor: the Monte Carlo harness needs ~1e5 entries/s to finish.
    assert entries_per_second > 20_000

"""Software decoder throughput (library performance, not a paper figure).

The Monte Carlo evaluation of Table 2 / Figure 8 rests on the vectorized
batch decoders; this benchmark measures their entry-decode throughput so
regressions in the hot path are caught.  pytest-benchmark runs each decoder
repeatedly over a fixed random error batch, and the packed syndrome-LUT
fast path of the binary schemes is held to >= 5x the unpacked reference
decoder it replaced.
"""

import time

import numpy as np
import pytest

from benchmarks._output import emit
from repro.core import get_scheme
from repro.core.registry import binary_scheme_names
from repro.core.layout import ENTRY_BITS
from repro.gf.gf2 import pack_rows

BATCH = 20_000
SCHEMES = ("ni-secded", "duet", "trio", "i-ssc-csc", "ssc-dsd+", "dsc")


@pytest.fixture(scope="module")
def error_batch():
    rng = np.random.default_rng(99)
    return (rng.random((BATCH, ENTRY_BITS)) < 0.01).astype(np.uint8)


def _best_rate(fn, arg, repeats=5):
    """Entries/second for ``fn(arg)``, best of ``repeats`` (after a warmup)."""
    fn(arg)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return arg.shape[0] / best


@pytest.mark.parametrize("name", SCHEMES)
def test_batch_decoder_throughput(benchmark, name, error_batch):
    scheme = get_scheme(name)
    result = benchmark(scheme.decode_batch_errors, error_batch)
    entries_per_second = BATCH / benchmark.stats["mean"]
    emit(
        f"Throughput — {name} batch decoder",
        f"{entries_per_second:,.0f} entries/s "
        f"({BATCH} entries/call, mean {benchmark.stats['mean'] * 1e3:.1f} ms)",
    )
    assert result.size == BATCH
    # Sanity floor: the Monte Carlo harness needs ~1e5 entries/s to finish.
    assert entries_per_second > 20_000


@pytest.mark.parametrize("name", binary_scheme_names())
def test_packed_lut_speedup(name, error_batch):
    """The packed syndrome-LUT path must beat the unpacked reference >= 5x."""
    scheme = get_scheme(name)
    words = pack_rows(error_batch)

    reference = _best_rate(scheme.decode_batch_errors_reference, error_batch)
    fast = _best_rate(scheme.decode_batch_errors, error_batch)
    packed = _best_rate(scheme.decode_batch_packed, words)

    emit(
        f"Throughput — {name} packed LUT vs reference",
        f"reference {reference:>12,.0f} entries/s\n"
        f"bits->LUT {fast:>12,.0f} entries/s ({fast / reference:.1f}x)\n"
        f"packed    {packed:>12,.0f} entries/s ({packed / reference:.1f}x)",
    )
    assert fast / reference >= 5.0
    assert packed / reference >= 5.0

"""Output plumbing for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  pytest's
fd-level capture swallows ordinary prints from passing tests, so
:func:`emit`

* archives the rendered rows under ``benchmarks/results/<name>.txt``, and
* queues the banner in :data:`EMITTED`, which the harness's ``conftest.py``
  flushes through the terminal reporter after the run — so a
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` transcript
  contains every regenerated table.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Banners queued for the end-of-run terminal summary.
EMITTED: list[str] = []


def emit(name: str, text: str) -> None:
    """Queue a regenerated table/figure and archive it under results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}"
    EMITTED.append(banner)

    RESULTS_DIR.mkdir(exist_ok=True)
    head = name.split("(")[0].strip()
    if head.startswith(("Figure", "Table", "Section")):
        head = head.split(":")[0]
    slug = (
        head.lower()
        .replace(":", "")
        .replace("—", "-")
        .replace(" ", "_")
        .replace("/", "-")[:60]
    )
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

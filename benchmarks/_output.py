"""Output plumbing for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  pytest's
fd-level capture swallows ordinary prints from passing tests, so
:func:`emit`

* archives the rendered rows under ``benchmarks/results/<name>.txt``, and
* queues the banner in :data:`EMITTED`, which the harness's ``conftest.py``
  flushes through the terminal reporter after the run — so a
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` transcript
  contains every regenerated table.
"""

from __future__ import annotations

import re
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Banners queued for the end-of-run terminal summary.
EMITTED: list[str] = []


def slugify(name: str) -> str:
    """Filesystem-safe archive name for a banner title.

    Paper-artifact titles ("Figure 8: ...", "Table 3 (decoders): ...")
    keep everything before the colon — including the parenthetical, which
    disambiguates the two Table-3 halves; free-form titles ("Throughput —
    trio batch decoder (paper: ...)") drop their parenthetical aside.
    Whatever survives is collapsed to ``[a-z0-9._-]`` runs and capped at
    60 characters.
    """
    head = name.split(":")[0] if re.match(r"(Figure|Table|Section)\b", name) \
        else name.split("(")[0]
    slug = re.sub(r"[^a-z0-9.-]+", "_", head.lower())
    return slug.strip("_.-")[:60].rstrip("_.-")


def emit(name: str, text: str) -> None:
    """Queue a regenerated table/figure and archive it under results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}"
    EMITTED.append(banner)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{slugify(name)}.txt").write_text(text + "\n")

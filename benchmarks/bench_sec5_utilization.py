"""Section 5 ("Effect of DRAM Utilization") — logic vs array error scaling.

The paper sweeps the microbenchmark's DRAM utilization and finds the
fraction of broad-and-severe logic errors (MBSE+MBME) proportional to the
number of memory accesses, while narrow array errors (SBSE+SBME) are
proportional to exposure time — the evidence that multi-bit errors
originate in DRAM logic rather than direct cell strikes.  This benchmark
reproduces the sweep with the generator's utilization model.
"""

import numpy as np

from benchmarks._output import emit
from repro.analysis.fitting import fit_linear
from repro.analysis.tables import format_table
from repro.beam.events import EventClass, SoftErrorEventGenerator

UTILIZATIONS = (0.1, 0.25, 0.5, 0.75, 1.0)
DURATION_S = 60_000.0  # long exposure for tight statistics


def _sweep():
    results = {}
    for index, utilization in enumerate(UTILIZATIONS):
        generator = SoftErrorEventGenerator(seed=100 + index)
        events = generator.events_in(DURATION_S, utilization=utilization)
        multi = sum(
            1 for event in events
            if event.event_class in (EventClass.MBSE, EventClass.MBME)
        )
        single = len(events) - multi
        results[utilization] = (single, multi)
    return results


def test_sec5_utilization_scaling(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for utilization, (single, multi) in results.items():
        fraction = multi / (single + multi)
        rows.append([
            f"{utilization:.2f}",
            single,
            multi,
            f"{fraction:.1%}",
        ])
    emit(
        "Section 5: error mix vs DRAM utilization "
        "(paper: logic errors scale with accesses, array errors with time)",
        format_table(
            ["utilization", "array errors (SB*)", "logic errors (MB*)",
             "multi-bit fraction"],
            rows,
        ),
    )

    singles = np.array([results[u][0] for u in UTILIZATIONS], dtype=float)
    multis = np.array([results[u][1] for u in UTILIZATIONS], dtype=float)
    utils = np.array(UTILIZATIONS)

    # Array-error counts are utilization-independent (same exposure time)...
    assert singles.std() / singles.mean() < 0.10
    # ...while logic-error counts are linear in utilization through ~0.
    fit = fit_linear(utils, multis)
    assert fit.r_squared > 0.95
    assert abs(fit.intercept) < 0.15 * multis.max()
    # At full utilization the mixture recovers Figure 4a's ~33% multi-bit.
    full = multis[-1] / (multis[-1] + singles[-1])
    assert 0.28 < full < 0.38

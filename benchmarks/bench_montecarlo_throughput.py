"""End-to-end Monte Carlo harness throughput (library performance).

Tracks the injection->decode->label pipeline that produces Table 2 and
Figure 8: per-cell events/second for representative schemes (surfacing the
``PatternOutcome.elapsed_s`` counters), and the ``workers=`` fan-out of
:func:`repro.errormodel.montecarlo.evaluate_scheme`, which must stay
bit-identical to the serial run whatever the worker count.
"""

import time

from benchmarks._output import emit
from repro.core import get_scheme
from repro.errormodel.montecarlo import evaluate_scheme
from repro.errormodel.patterns import ErrorPattern

SAMPLES = 20_000
SEED = 20211018
SCHEMES = ("ni-secded", "trio", "i-ssc-csc")


def test_montecarlo_cell_throughput():
    """Per-cell events/s across schemes; the binary schemes ride the LUTs."""
    rows = [f"{'scheme':<12} {'pattern':<11} {'events':>9} {'events/s':>12}"]
    total_events = 0
    total_elapsed = 0.0
    for name in SCHEMES:
        scheme = get_scheme(name)
        evaluate_scheme(scheme, samples=512, seed=SEED)  # warm every cache
        outcomes = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
        for pattern in ErrorPattern:
            outcome = outcomes[pattern]
            rows.append(
                f"{name:<12} {pattern.name:<11} {outcome.events:>9,} "
                f"{outcome.events_per_second:>12,.0f}"
            )
            total_events += outcome.events
            total_elapsed += outcome.elapsed_s
    overall = total_events / total_elapsed
    rows.append(f"{'overall':<12} {'':<11} {total_events:>9,} {overall:>12,.0f}")
    emit("Throughput — Monte Carlo harness (per Table-2 cell)", "\n".join(rows))
    # The harness needs ~1e5 events/s overall to reach paper-scale samples.
    assert overall > 50_000


def test_montecarlo_workers_bit_identical():
    """The process-pool fan-out returns the exact serial outcomes."""
    scheme = get_scheme("trio")

    start = time.perf_counter()
    serial = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    fanned = evaluate_scheme(scheme, samples=SAMPLES, seed=SEED, workers=2)
    fanned_s = time.perf_counter() - start

    assert fanned == serial  # elapsed_s is excluded from equality
    emit(
        "Throughput — Monte Carlo workers fan-out (trio)",
        f"workers=1 {serial_s:6.2f} s\n"
        f"workers=2 {fanned_s:6.2f} s (bit-identical outcomes; speedup "
        f"requires multi-core hardware)",
    )
